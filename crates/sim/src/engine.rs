//! The scheduler (`Simulation`) and the actor-side API (`Ctx`).
//!
//! Actors are lightweight execution contexts (stackful coroutines by
//! default, see [`crate::coro`]), resumed in place by the scheduler loop: a
//! wake dispatch is a user-space context switch into the actor, and a
//! blocking simcall is a switch back. There are no per-actor kernel threads
//! on the default backend — an actor is a heap stack plus a saved register
//! file — which is what makes million-actor simulations practical. The
//! [`ActorBackend::OsThread`] fallback runs the same protocol over parked
//! OS threads.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

use crate::coro::{self, Coro, Poll, ResumeArg, Stack, SwitchCoro, ThreadCoro};
use crate::kernel::{
    ActorId, ActorMeta, ActorStatus, BarrierId, BlockKind, CompletionId, CondId, EventKind,
    Kernel, MutexId, ResourceId, WaitGraph,
};
use crate::time::Time;

pub use crate::coro::ActorBackend;

/// Default actor stack size: matches the 8 MiB the engine used to give each
/// actor's OS thread. Coroutine stacks are lazily faulted, so the virtual
/// headroom costs nothing until touched; scale runs shrink it via
/// [`Simulation::set_stack_size`] / [`Ctx::spawn_with_stack`].
pub const DEFAULT_STACK_SIZE: usize = 8 << 20;

/// Cap on recycled coroutine stacks retained for reuse. Spawn-heavy runs
/// (one actor per work item) cycle through the pool with a near-100% hit
/// rate; the cap only matters when a huge cohort finishes at once.
const STACK_POOL_CAP: usize = 1024;

/// Process-wide default actor backend override (0 = auto, 1 = coroutine,
/// 2 = OS thread). Tests and benchmarks flip this around whole runs;
/// [`Simulation::set_actor_backend`] always wins for a single simulation.
static BACKEND_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Set (or clear) the process-wide default actor backend. Only affects
/// simulations created afterwards. `None` restores auto-selection:
/// `HUPC_ACTOR_BACKEND=thread|coro` if set, else coroutines where supported
/// (the `thread-actors` cargo feature flips the auto default to threads).
pub fn set_actor_backend_default(b: Option<ActorBackend>) {
    let v = match b {
        None => 0,
        Some(ActorBackend::Coroutine) => 1,
        Some(ActorBackend::OsThread) => 2,
    };
    BACKEND_OVERRIDE.store(v, Ordering::SeqCst);
}

/// Which dispatch engine a simulation runs on.
///
/// `Sequential` (the default) is the classic loop: one scheduler thread pops
/// the globally earliest event. `Parallel(n)` runs the simulation's logical
/// processes (see [`Simulation::set_lp_count`]) on up to `n` host worker
/// threads with conservative lower-bound-timestamp synchronization: a worker
/// only dispatches an event once no other LP can still produce an earlier
/// one, using the cross-LP lookahead ([`Simulation::set_lookahead`]) as the
/// null-message guarantee. Virtual-time behavior is identical across
/// backends — same events, same times, same sequence numbers — pinned by
/// the cross-backend equivalence suite in `crates/check`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimBackend {
    /// Single scheduler thread, global `(time, seq)` dispatch order.
    Sequential,
    /// Conservative parallel dispatch on up to `n` workers (`0` = one per
    /// host core). A simulation with one LP runs the same protocol on one
    /// worker, so traces stay byte-identical regardless of `n`.
    Parallel(usize),
}

/// Process-wide default sim backend override (0 = auto, 1 = sequential,
/// `2 + n` = parallel with n workers).
static SIM_BACKEND_OVERRIDE: AtomicU64 = AtomicU64::new(0);

/// Set (or clear) the process-wide default simulation backend. Only affects
/// simulations created afterwards. `None` restores auto-selection:
/// `HUPC_SIM_BACKEND=seq|parallel|parallel:<n>` if set, else sequential.
pub fn set_sim_backend_default(b: Option<SimBackend>) {
    let v = match b {
        None => 0,
        Some(SimBackend::Sequential) => 1,
        Some(SimBackend::Parallel(n)) => 2 + n as u64,
    };
    SIM_BACKEND_OVERRIDE.store(v, Ordering::SeqCst);
}

/// Worker count for `parallel` with no explicit count: one per host core.
fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn parse_sim_backend(s: &str) -> Option<SimBackend> {
    match s {
        "seq" | "sequential" => Some(SimBackend::Sequential),
        "par" | "parallel" => Some(SimBackend::Parallel(0)),
        _ => s
            .strip_prefix("parallel:")
            .or_else(|| s.strip_prefix("par:"))
            .and_then(|n| n.parse().ok())
            .map(SimBackend::Parallel),
    }
}

/// The simulation backend a freshly created [`Simulation`] will use.
pub fn sim_backend_default() -> SimBackend {
    match SIM_BACKEND_OVERRIDE.load(Ordering::SeqCst) {
        0 => {}
        1 => return SimBackend::Sequential,
        v => return SimBackend::Parallel((v - 2) as usize),
    }
    static ENV: std::sync::OnceLock<Option<SimBackend>> = std::sync::OnceLock::new();
    (*ENV.get_or_init(|| {
        std::env::var("HUPC_SIM_BACKEND")
            .ok()
            .as_deref()
            .and_then(parse_sim_backend)
    }))
    .unwrap_or(SimBackend::Sequential)
}

/// The actor backend a freshly created [`Simulation`] will use.
pub fn actor_backend_default() -> ActorBackend {
    match BACKEND_OVERRIDE.load(Ordering::SeqCst) {
        1 => return ActorBackend::Coroutine,
        2 => return ActorBackend::OsThread,
        _ => {}
    }
    static ENV: std::sync::OnceLock<Option<ActorBackend>> = std::sync::OnceLock::new();
    let env = *ENV.get_or_init(|| {
        match std::env::var("HUPC_ACTOR_BACKEND").ok().as_deref() {
            Some("thread") | Some("threads") | Some("os-thread") => {
                Some(ActorBackend::OsThread)
            }
            Some("coro") | Some("coroutine") | Some("coroutines") => {
                Some(ActorBackend::Coroutine)
            }
            _ => None,
        }
    });
    if let Some(b) = env {
        return b;
    }
    if cfg!(feature = "thread-actors") {
        ActorBackend::OsThread
    } else {
        ActorBackend::Coroutine
    }
}

/// Shared between the scheduler and every actor context.
struct Shared {
    kernel: Mutex<Kernel>,
    /// Actors registered in the kernel (meta + first wake already queued)
    /// whose bodies the scheduler has not yet collected. Spawns from inside
    /// a running actor land here — the actor cannot touch the scheduler's
    /// slot table while the scheduler is suspended mid-resume.
    staged: Mutex<Vec<StagedActor>>,
    /// Default stack size for newly spawned actors, bytes.
    stack_size: AtomicUsize,
    /// Backend for actors of this simulation (u8 of [`ActorBackend`]).
    backend: AtomicU8,
    /// Set when the first execution context is created. After this point
    /// [`Simulation::set_stack_size`] can no longer affect existing stacks.
    dispatched: AtomicBool,
    /// Parallel-backend workers park here (paired with the `kernel` mutex)
    /// when none of their LPs has a safe event; any worker that finishes an
    /// event (and so may have raised a neighbor's LBTS) notifies.
    work_cv: Condvar,
}

/// A registered actor whose execution context has not been created yet.
struct StagedActor {
    id: ActorId,
    /// Home LP — under the parallel backend only the worker owning this LP
    /// may collect the staged body.
    lp: usize,
    name: String,
    stack_size: usize,
    body: ActorBody,
}

/// Poison-tolerant lock: the engine's one deliberate poisoning policy.
///
/// Engine-side state stays consistent across an actor panic — the panicking
/// actor only ever completes a mutation before unwinding out of user code —
/// so a poisoned mutex carries a usable value. Taking it everywhere (kernel
/// and panic-note alike) means reporting a panic can never itself panic on a
/// poisoned lock and cascade.
fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Internal sentinel unwound through user code on simulation teardown.
struct ShutdownSignal;

thread_local! {
    /// Set just before the teardown unwind so the panic hook stays silent.
    static QUIET_UNWIND: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Install (once, process-wide) a panic hook that suppresses output for the
/// engine's internal teardown unwinds and delegates everything else.
fn install_quiet_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if QUIET_UNWIND.with(|q| q.get()) {
                return;
            }
            prev(info);
        }));
    });
}

/// Handle to a spawned actor; lets other actors join it.
#[derive(Clone, Copy, Debug)]
pub struct ActorRef {
    #[allow(dead_code)] // read by unit tests and diagnostics
    pub(crate) id: ActorId,
    exit: CompletionId,
}

impl ActorRef {
    /// Completion that fires when the actor finishes. Wait on it with
    /// [`Ctx::wait`] or poll it with [`Ctx::test`].
    #[must_use = "dropping the exit completion loses the only way to join the actor"]
    pub fn exit_completion(&self) -> CompletionId {
        self.exit
    }
}

/// A timed wait expired before the awaited primitive fired.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimedOut;

/// Why a run could not complete normally.
#[derive(Clone, Debug)]
pub enum SimError {
    /// The event queue drained while actors were still blocked. The wait
    /// graph names every blocked actor and the primitive (with owner /
    /// arrival context) it is stuck on.
    Deadlock { time: Time, wait_graph: WaitGraph },
    /// An actor panicked; the run was abandoned.
    ActorPanic {
        actor: usize,
        name: String,
        message: String,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock { time, wait_graph } => write!(
                f,
                "simulation deadlock at t={}: no events pending but actors are blocked:\n{wait_graph}",
                crate::time::format(*time)
            ),
            SimError::ActorPanic {
                actor,
                name,
                message,
            } => write!(f, "actor panicked: actor {actor} '{name}': {message}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Outcome of a run: stats on success, a structured failure otherwise.
pub type SimResult = Result<SimulationStats, SimError>;

/// Summary statistics of a finished run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SimulationStats {
    /// Virtual time at which the last event was processed.
    pub end_time: Time,
    /// Total number of events processed (scheduler-dispatched + bypassed).
    pub events: u64,
    /// Total number of actors that ran (including dynamically spawned ones).
    pub actors: usize,
    /// Simcalls resolved inline by the scheduler-bypass fast path — no
    /// context switch, no event-queue traffic.
    pub fast_path_hits: u64,
    /// Full scheduler → actor handoffs (each costs a resume/yield context
    /// switch round trip).
    pub handoffs: u64,
    /// Operations on the far (binary-heap) half of the split event queue;
    /// near-bucket traffic is O(1) and not counted.
    pub heap_ops: u64,
}

/// Per-actor execution state owned by the scheduler.
enum ActorSlot {
    /// Registered but never dispatched: creating the stack and context is
    /// deferred to the first wake, so a spawn burst costs one kernel
    /// registration per actor and queued-but-not-yet-run actors are a few
    /// hundred bytes each, not a stack each.
    Pending {
        name: String,
        stack_size: usize,
        body: ActorBody,
    },
    /// Live execution context (running or suspended).
    Started(Coro),
    /// Finished; stack reclaimed.
    Done,
}

/// A deterministic discrete-event simulation.
///
/// Spawn root actors with [`Simulation::spawn`], configure platform state via
/// [`Simulation::kernel`], then call [`Simulation::run`].
pub struct Simulation {
    shared: Arc<Shared>,
    /// Execution state per actor id; extended as staged spawns are drained.
    actors: Vec<ActorSlot>,
    /// Recycled coroutine stacks of finished actors (bounded).
    stack_pool: Vec<Stack>,
    /// Dispatch engine for this simulation (see [`SimBackend`]).
    sim_backend: SimBackend,
    ran: bool,
}

impl Default for Simulation {
    fn default() -> Self {
        Self::new()
    }
}

impl Simulation {
    pub fn new() -> Self {
        install_quiet_hook();
        let backend = actor_backend_default();
        let sim = Simulation {
            shared: Arc::new(Shared {
                kernel: Mutex::new(Kernel::new()),
                staged: Mutex::new(Vec::new()),
                stack_size: AtomicUsize::new(DEFAULT_STACK_SIZE),
                backend: AtomicU8::new(backend_code(backend)),
                dispatched: AtomicBool::new(false),
                work_cv: Condvar::new(),
            }),
            actors: Vec::new(),
            stack_pool: Vec::new(),
            sim_backend: sim_backend_default(),
            ran: false,
        };
        // Adopt the process-global tracer (if installed) so app-level
        // drivers that construct their own Simulation internally are traced
        // without plumbing a handle through every config struct.
        #[cfg(feature = "trace")]
        if let Some(t) = hupc_trace::global_tracer() {
            sim.kernel().set_tracer(Some(t));
        }
        sim
    }

    /// Mutable access to the kernel for pre-run setup (resources, barriers,
    /// …). Must not be called while the simulation is running.
    pub fn kernel(&self) -> MutexGuard<'_, Kernel> {
        relock(&self.shared.kernel)
    }

    /// Enable per-event tracing to stderr (debugging aid).
    pub fn set_trace(&self, on: bool) {
        self.kernel().trace = on;
    }

    /// Enable / disable the scheduler-bypass fast path (see
    /// [`Kernel::set_fast_path`]). On by default.
    pub fn set_fast_path(&self, on: bool) {
        self.kernel().set_fast_path(on);
    }

    /// Install a schedule-exploration tie-break policy (see
    /// [`crate::SchedulePolicy`]). Must be set before [`Simulation::run`].
    pub fn set_schedule_policy(&self, p: Option<Box<dyn crate::SchedulePolicy>>) {
        self.kernel().set_schedule_policy(p);
    }

    /// Attach a structured tracer (see `hupc-trace`), overriding any
    /// process-global one adopted at construction. Must be called before
    /// [`Simulation::run`]: actors capture the tracer when they start.
    #[cfg(feature = "trace")]
    pub fn set_tracer(&self, t: Option<Arc<hupc_trace::Tracer>>) {
        self.kernel().set_tracer(t);
    }

    /// Select the execution backend for actors of this simulation. Must be
    /// called before any actor is dispatched (in practice: before
    /// [`Simulation::run`]); actors already started keep their context.
    /// Virtual-time behavior is bit-identical across backends — only host
    /// speed, memory footprint, and actor-count headroom differ.
    pub fn set_actor_backend(&self, b: ActorBackend) {
        self.shared.backend.store(backend_code(b), Ordering::SeqCst);
    }

    /// The backend actors of this simulation run on.
    pub fn actor_backend(&self) -> ActorBackend {
        backend_of(self.shared.backend.load(Ordering::SeqCst))
    }

    /// Select the dispatch engine for this run (see [`SimBackend`]). Must be
    /// called before [`Simulation::run`]. A schedule-exploration policy
    /// forces the sequential loop regardless (tie-breaking needs the global
    /// view of simultaneous events); replays therefore behave identically
    /// under either setting.
    pub fn set_sim_backend(&mut self, b: SimBackend) {
        self.sim_backend = b;
    }

    /// The dispatch engine this simulation will run on.
    pub fn sim_backend(&self) -> SimBackend {
        self.sim_backend
    }

    /// Partition the simulation into `k` logical processes (see
    /// [`Kernel::set_lp_count`]). Must be called before any spawn; pair with
    /// [`Simulation::set_lookahead`] for multi-LP parallel runs.
    pub fn set_lp_count(&self, k: usize) {
        self.kernel().set_lp_count(k);
    }

    /// Declare the cross-LP lookahead (see [`Kernel::set_lookahead`]):
    /// a promise that every cross-LP event lands at least this far past the
    /// sender's clock. Derive it from the minimum inter-node link latency
    /// (`hupc-net`'s `Fabric::lookahead`).
    pub fn set_lookahead(&self, l: Time) {
        self.kernel().set_lookahead(l);
    }

    /// Set the default stack size (bytes) for actors spawned afterwards.
    /// Coroutine stacks are heap allocations faulted in lazily, so a large
    /// default costs only virtual address space; scale runs use small
    /// explicit sizes to keep the resident set per live actor minimal.
    ///
    /// Only affects stacks not yet created: an actor's stack is allocated at
    /// its first dispatch and keeps that size forever. Calling this after
    /// the run has started dispatching is almost certainly a bug (the stacks
    /// you meant to size already exist), so it trips a `debug_assert!`;
    /// size actors spawned mid-run with [`Ctx::spawn_with_stack`] instead.
    pub fn set_stack_size(&self, bytes: usize) {
        debug_assert!(
            !self.shared.dispatched.load(Ordering::SeqCst),
            "set_stack_size after first dispatch: already-created stacks keep \
             their size; use spawn_with_stack for actors spawned mid-run"
        );
        self.shared
            .stack_size
            .store(bytes.max(coro::MIN_STACK), Ordering::SeqCst);
    }

    /// Current default actor stack size, bytes.
    pub fn stack_size(&self) -> usize {
        self.shared.stack_size.load(Ordering::SeqCst)
    }

    /// Spawn a root actor scheduled to start at time 0 (on LP 0).
    pub fn spawn<F>(&mut self, name: impl Into<String>, body: F) -> ActorRef
    where
        F: FnOnce(&Ctx) + Send + 'static,
    {
        self.spawn_on(0, name, body)
    }

    /// Spawn a root actor homed on logical process `lp`: its wakes and
    /// timeouts queue there, and under the parallel backend it only ever
    /// runs on the worker that owns that LP.
    pub fn spawn_on<F>(&mut self, lp: usize, name: impl Into<String>, body: F) -> ActorRef
    where
        F: FnOnce(&Ctx) + Send + 'static,
    {
        let stack = self.stack_size();
        // Pre-run registration pushes the start wake from the target LP's
        // own context, so root spawns are intra-LP regardless of partition.
        register_actor(&self.shared, name.into(), stack, Box::new(body), 0, lp, lp)
    }

    /// [`Simulation::spawn`] with an explicit stack size for this actor.
    pub fn spawn_with_stack<F>(
        &mut self,
        name: impl Into<String>,
        stack_bytes: usize,
        body: F,
    ) -> ActorRef
    where
        F: FnOnce(&Ctx) + Send + 'static,
    {
        register_actor(&self.shared, name.into(), stack_bytes, Box::new(body), 0, 0, 0)
    }

    /// Run until every actor has finished. Panics (with diagnostics) on
    /// deadlock or if any actor panicked; use [`Simulation::run_result`] to
    /// observe those failures as values instead.
    pub fn run(&mut self) -> SimulationStats {
        self.run_result().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Run until every actor has finished, returning a structured
    /// [`SimResult`]: on deadlock the error carries the full wait graph
    /// (which actor waits on which completion / barrier / mutex, with
    /// names); on actor panic it carries the actor and message. Tests can
    /// assert on the failure shape instead of parsing panic strings.
    pub fn run_result(&mut self) -> SimResult {
        assert!(!self.ran, "Simulation::run may only be called once");
        self.ran = true;
        let (num_lps, has_policy) = {
            let k = self.kernel();
            (k.num_lps(), k.has_schedule_policy())
        };
        match self.sim_backend {
            SimBackend::Sequential => self.sequential_run(),
            // A tie-break policy needs the global view of simultaneous
            // events; conservative parallel dispatch never assembles one.
            // Exploration and replay always go through the sequential loop,
            // which is why `.schedule` replays are backend-independent.
            SimBackend::Parallel(_) if has_policy => self.sequential_run(),
            SimBackend::Parallel(n) => {
                let n = if n == 0 { default_workers() } else { n };
                self.parallel_run(n.min(num_lps).max(1))
            }
        }
    }

    /// The classic loop: one scheduler thread pops the globally earliest
    /// event. Remains the default backend and the differential oracle for
    /// the parallel engine.
    fn sequential_run(&mut self) -> SimResult {
        loop {
            let (lp, event, trace) = {
                let mut k = self.kernel();
                if k.live_actors == 0 {
                    let stats = SimulationStats {
                        end_time: k.now(),
                        events: k.events_processed(),
                        actors: k.registered_actors(),
                        fast_path_hits: k.fast_path_hits,
                        handoffs: k.handoffs,
                        heap_ops: k.heap_ops,
                    };
                    return Ok(stats);
                }
                match k.pop_event() {
                    Some((lp, e)) => {
                        k.enter_lp(lp);
                        k.log_event(e.time, e.seq, e.kind);
                        #[cfg(feature = "trace")]
                        k.trace_dispatch(&e);
                        k.set_now(e.time);
                        (lp, e, k.trace)
                    }
                    None => {
                        let wait_graph = k.wait_graph();
                        let time = k.now();
                        return Err(SimError::Deadlock { time, wait_graph });
                    }
                }
            };
            if trace {
                eprintln!("[sim t={}] {:?}", crate::time::format(event.time), event.kind);
            }
            match event.kind {
                EventKind::Complete(c) => {
                    let mut k = self.kernel();
                    k.enter_lp(lp);
                    k.fire_completion(c);
                }
                EventKind::Timeout(a, epoch) => {
                    // A timed wait expired. If the actor was woken since the
                    // deadline was armed the event is stale; otherwise pull
                    // the actor out of its wait registration and wake it
                    // with the timed-out flag set.
                    let mut k = self.kernel();
                    k.enter_lp(lp);
                    if k.timeout_is_live(a, epoch) {
                        k.cancel_wait(a);
                        k.actors[a].timed_out = true;
                        let now = k.now();
                        k.wake_at(now, a);
                    }
                }
                EventKind::Wake(a) => {
                    {
                        let mut k = self.kernel();
                        k.enter_lp(lp);
                        k.mark_running(a);
                        k.handoffs += 1;
                    }
                    // Switch into the actor. It runs — possibly through many
                    // fast-path simcalls — until it parks or finishes; the
                    // kernel lock is free the whole time it executes.
                    let poll = self.resume_actor(a, ResumeArg::Run);
                    if poll == Poll::Finished {
                        self.retire(a);
                    }
                    // Panic payloads travel inside the kernel (recorded by
                    // the panicking actor under the kernel lock before it
                    // switches back), so propagation is a typed field
                    // handoff, not a join side effect.
                    let note = {
                        let mut k = self.kernel();
                        k.take_panic_note()
                            .map(|(id, message)| (id, k.actors[id].name.clone(), message))
                    };
                    if let Some((id, name, message)) = note {
                        return Err(SimError::ActorPanic {
                            actor: id,
                            name,
                            message,
                        });
                    }
                }
            }
        }
    }

    /// Conservative parallel run on `workers` host threads.
    ///
    /// Each worker owns a disjoint set of LPs (round-robin by `lp % workers`)
    /// together with those LPs' actors, coroutine stacks, and staged spawns.
    /// Workers repeatedly ask the kernel for a *safe* event among their LPs
    /// ([`Kernel::pop_safe`]): one that no other LP can still undercut given
    /// every neighbor's lower-bound timestamp + lookahead. Intra-LP events
    /// need no synchronization beyond the kernel lock itself; cross-LP
    /// events are bounded below by the lookahead contract enforced at push.
    /// With nothing safe, a worker parks on [`Shared::work_cv`] until a
    /// neighbor finishes an event (raising its LBTS).
    fn parallel_run(&mut self, workers: usize) -> SimResult {
        self.drain_staged();
        let num_lps = {
            let mut k = self.kernel();
            if k.num_lps() > 1 {
                assert!(
                    k.lookahead() >= 1,
                    "parallel multi-LP runs need a positive lookahead \
                     (Simulation::set_lookahead) or LBTS never advances"
                );
            }
            k.set_parallel_mode(true);
            k.num_lps()
        };
        // Partition the slot table: each worker takes the actors homed on
        // its LPs (stack creation is lazy, so most slots are just bodies).
        let homes: Vec<usize> = {
            let k = self.kernel();
            (0..self.actors.len()).map(|id| k.actor_lp(id)).collect()
        };
        let mut worker_slots: Vec<HashMap<ActorId, ActorSlot>> =
            (0..workers).map(|_| HashMap::new()).collect();
        for (id, &lp) in homes.iter().enumerate() {
            let slot = std::mem::replace(&mut self.actors[id], ActorSlot::Done);
            worker_slots[lp % workers].insert(id, slot);
        }
        let ctl = ParCtl {
            stop: AtomicBool::new(false),
            waiting: AtomicUsize::new(0),
            error: Mutex::new(None),
        };
        let outcomes: Vec<(HashMap<ActorId, ActorSlot>, Vec<Stack>)> =
            std::thread::scope(|s| {
                let handles: Vec<_> = worker_slots
                    .into_iter()
                    .enumerate()
                    .map(|(w, slots)| {
                        let shared = Arc::clone(&self.shared);
                        let owned: Vec<usize> =
                            (0..num_lps).filter(|l| l % workers == w).collect();
                        let ctl = &ctl;
                        s.spawn(move || worker_loop(shared, w, workers, owned, slots, ctl))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("sim worker thread panicked"))
                    .collect()
            });
        // Merge actor state back so Drop can shut down suspended actors and
        // later runs of the pool can reuse stacks.
        let total_actors = self.kernel().actors.len();
        if self.actors.len() < total_actors {
            self.actors.resize_with(total_actors, || ActorSlot::Done);
        }
        for (slots, pool) in outcomes {
            for (id, slot) in slots {
                self.actors[id] = slot;
            }
            for stack in pool {
                if self.stack_pool.len() < STACK_POOL_CAP {
                    self.stack_pool.push(stack);
                }
            }
        }
        if let Some(err) = relock(&ctl.error).take() {
            return Err(err);
        }
        let k = self.kernel();
        Ok(SimulationStats {
            end_time: k.max_lp_now(),
            events: k.events_processed(),
            actors: k.registered_actors(),
            fast_path_hits: k.fast_path_hits,
            handoffs: k.handoffs,
            heap_ops: k.heap_ops,
        })
    }

    /// Pull staged spawns into the slot table. Ids are dense and assigned in
    /// registration order under the kernel lock; sequential runs therefore
    /// extend the table contiguously, but after a parallel run (where
    /// workers drained their own LPs' entries out of order) the table may
    /// need sparse filling, so missing ids become `Done` placeholders.
    fn drain_staged(&mut self) {
        let mut staged = relock(&self.shared.staged);
        for s in staged.drain(..) {
            if self.actors.len() <= s.id {
                self.actors.resize_with(s.id + 1, || ActorSlot::Done);
            }
            debug_assert!(
                matches!(self.actors[s.id], ActorSlot::Done),
                "staged spawn collides with a live slot"
            );
            self.actors[s.id] = ActorSlot::Pending {
                name: s.name,
                stack_size: s.stack_size,
                body: s.body,
            };
        }
    }

    /// Resume actor `a`, creating its execution context on first dispatch.
    fn resume_actor(&mut self, a: ActorId, arg: ResumeArg) -> Poll {
        self.drain_staged();
        if matches!(self.actors[a], ActorSlot::Pending { .. }) {
            let slot = std::mem::replace(&mut self.actors[a], ActorSlot::Done);
            let ActorSlot::Pending {
                name,
                stack_size,
                body,
            } = slot
            else {
                unreachable!()
            };
            let coro = self.make_context(a, name, stack_size, body);
            self.actors[a] = ActorSlot::Started(coro);
        }
        let ActorSlot::Started(c) = &mut self.actors[a] else {
            unreachable!("woke actor {a} with no execution context");
        };
        c.resume(arg)
    }

    /// Move a finished actor's slot to `Done`, recycling its stack.
    fn retire(&mut self, a: ActorId) {
        if let ActorSlot::Started(c) = &mut self.actors[a] {
            debug_assert!(c.finished());
            if let Some(stack) = c.take_stack() {
                if self.stack_pool.len() < STACK_POOL_CAP {
                    self.stack_pool.push(stack);
                }
            }
            self.actors[a] = ActorSlot::Done;
        }
    }

    /// Build the execution context for one actor: the body wrapped with
    /// panic containment and finish bookkeeping, on the selected backend.
    fn make_context(
        &mut self,
        id: ActorId,
        name: String,
        stack_size: usize,
        body: ActorBody,
    ) -> Coro {
        build_context(&self.shared, &mut self.stack_pool, id, name, stack_size, body)
    }
}

/// A stack of exactly `want` usable bytes, reused from `pool` when one is
/// available.
fn pooled_stack(pool: &mut Vec<Stack>, size: usize) -> Stack {
    let want = size.max(coro::MIN_STACK).next_multiple_of(4096);
    if let Some(pos) = pool.iter().rposition(|s| s.size() == want) {
        return pool.swap_remove(pos);
    }
    Stack::new(want)
}

/// Build the execution context for one actor (free function so both the
/// sequential scheduler and parallel workers, each with their own stack
/// pool, share one definition).
fn build_context(
    shared: &Arc<Shared>,
    pool: &mut Vec<Stack>,
    id: ActorId,
    name: String,
    stack_size: usize,
    body: ActorBody,
) -> Coro {
    shared.dispatched.store(true, Ordering::SeqCst);
    let backend = backend_of(shared.backend.load(Ordering::SeqCst));
    let shared = Arc::clone(shared);
    let wrapper: Box<dyn FnOnce(ResumeArg) + Send> = Box::new(move |first: ResumeArg| {
        if first == ResumeArg::Shutdown {
            // Torn down before ever running; skip the body entirely.
            return;
        }
        #[cfg(feature = "trace")]
        let (lp, tracer) = {
            let k = relock(&shared.kernel);
            (k.actor_lp(id), k.tracer().cloned())
        };
        #[cfg(not(feature = "trace"))]
        let lp = relock(&shared.kernel).actor_lp(id);
        let ctx = Ctx {
            shared: Arc::clone(&shared),
            id,
            lp,
            deferred: AtomicU64::new(0),
            tag: AtomicU64::new(0),
            // Captured at first dispatch, i.e. once the run has started,
            // so a tracer attached any time before `run()` is seen by
            // every actor.
            #[cfg(feature = "trace")]
            tracer,
        };
        let result = catch_unwind(AssertUnwindSafe(|| body(&ctx)));
        // The hosting OS thread outlives this coroutine: a quiet teardown
        // unwind must not leave the flag set for whoever runs on that
        // thread next.
        QUIET_UNWIND.with(|q| q.set(false));
        let shutdown = matches!(
            &result,
            Err(p) if p.is::<ShutdownSignal>()
        );
        if shutdown {
            // Teardown: do not touch kernel bookkeeping; just finish.
            return;
        }
        if let Err(p) = result {
            let msg = panic_message(p.as_ref());
            // One kernel transaction: record the typed panic note and
            // mark the actor finished so the scheduler does not hang.
            // `relock` still matters here — a panic inside a
            // `with_kernel` closure poisons the kernel mutex itself —
            // but the note is now a kernel field, not a side channel.
            let mut k = relock(&shared.kernel);
            k.enter_lp(lp);
            k.note_panic(id, msg);
            k.actors[id].status = ActorStatus::Finished;
            k.live_actors -= 1;
            return;
        }
        let mut k = relock(&shared.kernel);
        // Re-enter this actor's LP: under the parallel backend another
        // worker may have switched the kernel's LP context since this
        // actor's last simcall, and the exit-completion wakes below must be
        // attributed to (and clocked by) the finishing actor's own LP.
        k.enter_lp(lp);
        k.actors[id].status = ActorStatus::Finished;
        k.live_actors -= 1;
        let exit = k.actors[id].exit;
        k.fire_completion(exit);
    });
    match backend {
        ActorBackend::Coroutine if coro::SWITCH_SUPPORTED => {
            let stack = pooled_stack(pool, stack_size);
            Coro::Switch(SwitchCoro::new(stack, wrapper))
        }
        // No asm switch on this target: fall back to threads silently so
        // code that requests coroutines stays portable.
        _ => Coro::Thread(ThreadCoro::new(name, stack_size, wrapper)),
    }
}

impl Drop for Simulation {
    fn drop(&mut self) {
        // Tear down every unfinished actor: resume it with the shutdown
        // flag so it unwinds out of user code (quietly) and finishes.
        // Never-dispatched actors have no context yet — their bodies are
        // simply dropped. An actor whose teardown unwind blocks again is
        // resumed with shutdown again (a simcall in a `Drop` during the
        // unwind re-panics, which aborts — same contract as always).
        self.drain_staged();
        for a in 0..self.actors.len() {
            loop {
                let live = matches!(&self.actors[a], ActorSlot::Started(c) if !c.finished());
                if !live {
                    break;
                }
                let _ = self.resume_actor(a, ResumeArg::Shutdown);
            }
            self.retire(a);
        }
    }
}

/// Shared control state for one parallel run (lives on the scheduler's
/// stack; workers borrow it through `thread::scope`).
struct ParCtl {
    /// Run over (success, deadlock, or panic): every worker drains out.
    stop: AtomicBool,
    /// Workers currently parked on `work_cv` — lets finishing workers skip
    /// the notify syscall on the hot path when nobody is waiting.
    waiting: AtomicUsize,
    /// First failure wins; later workers keep it intact.
    error: Mutex<Option<SimError>>,
}

impl ParCtl {
    /// Flag the run as over and wake every parked worker.
    fn finish(&self, shared: &Shared) {
        self.stop.store(true, Ordering::SeqCst);
        shared.work_cv.notify_all();
    }

    /// Record `err` if no earlier failure already did, then stop the run.
    fn fail(&self, shared: &Shared, err: SimError) {
        let mut slot = relock(&self.error);
        if slot.is_none() {
            *slot = Some(err);
        }
        drop(slot);
        self.finish(shared);
    }
}

/// Collect staged spawns homed on worker `w`'s LPs into its slot table.
/// Entries for other workers stay queued (order within `staged` is not
/// meaningful — slots are keyed by actor id).
fn drain_staged_local(
    shared: &Shared,
    slots: &mut HashMap<ActorId, ActorSlot>,
    w: usize,
    workers: usize,
) {
    let mut staged = relock(&shared.staged);
    let mut i = 0;
    while i < staged.len() {
        if staged[i].lp % workers == w {
            let s = staged.swap_remove(i);
            slots.insert(
                s.id,
                ActorSlot::Pending {
                    name: s.name,
                    stack_size: s.stack_size,
                    body: s.body,
                },
            );
        } else {
            i += 1;
        }
    }
}

/// Worker-side analog of [`Simulation::resume_actor`]: resume `a`, creating
/// its execution context from this worker's staged entries and stack pool
/// on first dispatch.
fn resume_actor_local(
    shared: &Arc<Shared>,
    slots: &mut HashMap<ActorId, ActorSlot>,
    pool: &mut Vec<Stack>,
    w: usize,
    workers: usize,
    a: ActorId,
) -> Poll {
    // A `Done` slot here may be a *placeholder* from the sparse packed-id
    // tables (the id was reserved for this LP's counter but only allocated
    // by a later mid-run spawn), so it does not prove the body was taken —
    // drain staged entries unless the actor demonstrably started already.
    if !matches!(slots.get(&a), Some(ActorSlot::Started(_))) {
        drain_staged_local(shared, slots, w, workers);
    }
    let slot = slots
        .entry(a)
        .or_insert_with(|| unreachable!("woke actor {a} with no staged body"));
    if matches!(slot, ActorSlot::Pending { .. }) {
        let taken = std::mem::replace(slot, ActorSlot::Done);
        let ActorSlot::Pending {
            name,
            stack_size,
            body,
        } = taken
        else {
            unreachable!()
        };
        *slot = ActorSlot::Started(build_context(shared, pool, a, name, stack_size, body));
    }
    let ActorSlot::Started(c) = slot else {
        unreachable!("woke actor {a} with no execution context");
    };
    c.resume(ResumeArg::Run)
}

/// One parallel worker: owns the LPs in `owned` (all `lp % workers == w`)
/// plus their actors' execution state; loops popping safe events for those
/// LPs until the run completes or fails. Returns its slot table and stack
/// pool so the scheduler can merge them back for teardown.
fn worker_loop(
    shared: Arc<Shared>,
    w: usize,
    workers: usize,
    owned: Vec<usize>,
    mut slots: HashMap<ActorId, ActorSlot>,
    ctl: &ParCtl,
) -> (HashMap<ActorId, ActorSlot>, Vec<Stack>) {
    let mut pool: Vec<Stack> = Vec::new();
    'run: loop {
        let mut k = relock(&shared.kernel);
        let (lp, event) = loop {
            if ctl.stop.load(Ordering::SeqCst) {
                break 'run;
            }
            if k.live_actors == 0 {
                drop(k);
                ctl.finish(&shared);
                break 'run;
            }
            if let Some(found) = k.pop_safe(&owned) {
                break found;
            }
            if k.pending_events() == 0 && !k.any_lp_busy() {
                // Globally out of events with actors still blocked: the
                // same deadlock the sequential loop reports. Whichever
                // worker notices first records the wait graph.
                let wait_graph = k.wait_graph();
                let time = k.max_lp_now();
                drop(k);
                ctl.fail(&shared, SimError::Deadlock { time, wait_graph });
                break 'run;
            }
            // Nothing safe for our LPs right now. Park until a neighbor
            // finishes an event (raising its LBTS); the timeout is a
            // belt-and-braces backstop, not a correctness requirement.
            ctl.waiting.fetch_add(1, Ordering::SeqCst);
            let (guard, _) = shared
                .work_cv
                .wait_timeout(k, Duration::from_micros(200))
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            ctl.waiting.fetch_sub(1, Ordering::SeqCst);
            k = guard;
        };
        let trace = k.trace;
        k.enter_lp(lp);
        k.log_event(event.time, event.seq, event.kind);
        #[cfg(feature = "trace")]
        k.trace_dispatch(&event);
        k.set_now(event.time);
        if trace {
            eprintln!(
                "[sim w{w} t={}] {:?}",
                crate::time::format(event.time),
                event.kind
            );
        }
        match event.kind {
            EventKind::Complete(c) => {
                k.fire_completion(c);
                k.finish_lp(lp);
                drop(k);
            }
            EventKind::Timeout(a, epoch) => {
                if k.timeout_is_live(a, epoch) {
                    k.cancel_wait(a);
                    k.actors[a].timed_out = true;
                    let now = k.now();
                    k.wake_at(now, a);
                }
                k.finish_lp(lp);
                drop(k);
            }
            EventKind::Wake(a) => {
                k.mark_running(a);
                k.handoffs += 1;
                drop(k);
                // Run the actor with the kernel lock free; it belongs to
                // one of our LPs, so no other worker can touch it.
                let poll = resume_actor_local(&shared, &mut slots, &mut pool, w, workers, a);
                if poll == Poll::Finished {
                    if let Some(slot) = slots.get_mut(&a) {
                        if let ActorSlot::Started(c) = slot {
                            debug_assert!(c.finished());
                            if let Some(stack) = c.take_stack() {
                                if pool.len() < STACK_POOL_CAP {
                                    pool.push(stack);
                                }
                            }
                            *slot = ActorSlot::Done;
                        }
                    }
                }
                let mut k = relock(&shared.kernel);
                let note = k
                    .take_panic_note()
                    .map(|(id, message)| (id, k.actors[id].name.clone(), message));
                k.finish_lp(lp);
                drop(k);
                if let Some((id, name, message)) = note {
                    ctl.fail(
                        &shared,
                        SimError::ActorPanic {
                            actor: id,
                            name,
                            message,
                        },
                    );
                    break 'run;
                }
            }
        }
        // Our LP advanced: neighbors blocked on our LBTS may now have safe
        // events. Skip the notify when nobody is parked.
        if ctl.waiting.load(Ordering::SeqCst) > 0 {
            shared.work_cv.notify_all();
        }
    }
    (slots, pool)
}

fn backend_code(b: ActorBackend) -> u8 {
    match b {
        ActorBackend::Coroutine => 0,
        ActorBackend::OsThread => 1,
    }
}

fn backend_of(code: u8) -> ActorBackend {
    match code {
        0 => ActorBackend::Coroutine,
        _ => ActorBackend::OsThread,
    }
}

type ActorBody = Box<dyn FnOnce(&Ctx) + Send + 'static>;

/// Register an actor: create the kernel record, schedule its first wake at
/// `start_time`, and stage the body for the scheduler to start lazily on
/// first dispatch.
/// `lp` is the new actor's home; `from_lp` is the LP context performing the
/// spawn (the parent's LP, or the target itself for pre-run root spawns).
/// A cross-LP spawn (`lp != from_lp`) schedules the start wake no earlier
/// than `spawner now + lookahead` — the same contract every cross-LP event
/// obeys — so conservative parallel dispatch never sees it early.
fn register_actor(
    shared: &Arc<Shared>,
    name: String,
    stack_size: usize,
    body: ActorBody,
    start_time: Time,
    lp: usize,
    from_lp: usize,
) -> ActorRef {
    let mut k = relock(&shared.kernel);
    assert!(
        lp < k.num_lps(),
        "spawn_on: LP {lp} out of range (simulation has {} LPs)",
        k.num_lps()
    );
    k.enter_lp(from_lp);
    let spawned_at = k.now();
    let min_start = if lp == from_lp {
        spawned_at
    } else {
        spawned_at.saturating_add(k.lookahead())
    };
    let start = start_time.max(min_start);
    // Actor id and exit completion are both allocated from the *spawner's*
    // LP counters (deterministic: one LP's actions are serial); the actor
    // is nevertheless homed on `lp`.
    let exit = k.new_completion();
    let id = k.alloc_actor(ActorMeta {
        name: name.clone(),
        status: ActorStatus::Blocked,
        lp,
        exit,
        blocked_on: BlockKind::Start,
        wake_epoch: 0,
        timed_out: false,
        blocked_since: spawned_at,
        recent: std::collections::VecDeque::new(),
    });
    k.live_actors += 1;
    k.wake_at(start, id);
    // Stage the body while still holding the kernel lock: under the
    // parallel backend another worker may dispatch the start wake the
    // instant the lock drops, and it must find the staged entry. (Staged is
    // only ever taken while holding — or strictly after releasing — the
    // kernel lock, never the other way around, so the nesting is safe.)
    relock(&shared.staged).push(StagedActor {
        id,
        lp,
        name,
        stack_size,
        body,
    });
    drop(k);
    ActorRef { id, exit }
}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Actor-side handle to the simulation: every simcall goes through this.
///
/// A `Ctx` is passed to the actor body and borrowed by anything that needs to
/// advance virtual time or block.
pub struct Ctx {
    shared: Arc<Shared>,
    id: ActorId,
    /// Home LP (fixed at spawn). Every kernel interaction from this actor
    /// re-enters this LP's context first, so virtual time reads the LP's
    /// clock and pushed events carry the LP's sequence counter.
    lp: usize,
    /// Lazily accumulated pure delay ([`Ctx::advance_lazy`]): virtual time
    /// this actor has charged but not yet pushed into the kernel. Flushed —
    /// as a single logical advance — before any kernel interaction, so no
    /// other actor (and no event) can ever observe the stale clock.
    deferred: AtomicU64,
    /// Actor-local tag word (see [`Ctx::set_actor_tag`]). Lives on the
    /// context rather than in OS-thread TLS because actors share the
    /// scheduler's thread on the coroutine backend.
    tag: AtomicU64,
    /// Tracer captured at actor start (cheap clone of the kernel's).
    #[cfg(feature = "trace")]
    tracer: Option<Arc<hupc_trace::Tracer>>,
}

impl Ctx {
    /// This actor's id (unique within the simulation, dense from 0).
    #[inline]
    pub fn actor_id(&self) -> usize {
        self.id
    }

    /// Actor name (as given at spawn).
    pub fn name(&self) -> String {
        self.kernel().actors[self.id].name.clone()
    }

    /// Set this actor's local tag word — scratch state scoped to the actor,
    /// not the OS thread. Runtime layers use it for per-actor flags that
    /// OS-thread designs would put in TLS (e.g. `hupc-upc`'s sub-thread
    /// context marker); with coroutine actors all sharing one kernel
    /// thread, TLS would leak across actors.
    #[inline]
    pub fn set_actor_tag(&self, v: u64) {
        self.tag.store(v, Ordering::Relaxed);
    }

    /// This actor's local tag word (0 until set).
    #[inline]
    pub fn actor_tag(&self) -> u64 {
        self.tag.load(Ordering::Relaxed)
    }

    /// Current virtual time (includes this actor's lazily deferred delay).
    pub fn now(&self) -> Time {
        self.kernel().now() + self.deferred.load(Ordering::Relaxed)
    }

    /// This actor's home logical process.
    #[inline]
    pub fn lp(&self) -> usize {
        self.lp
    }

    fn kernel(&self) -> MutexGuard<'_, Kernel> {
        let mut k = relock(&self.shared.kernel);
        k.enter_lp(self.lp);
        k
    }

    /// Lock the kernel after flushing any lazily deferred delay. Every
    /// simcall that reads or mutates kernel state goes through this, which
    /// is what makes the lazy clock invisible: by the time anything can
    /// observe the kernel, the clock has caught up.
    fn kernel_synced(&self) -> MutexGuard<'_, Kernel> {
        let d = self.deferred.swap(0, Ordering::Relaxed);
        let mut k = self.kernel();
        if d > 0 {
            let t = k.now() + d;
            if k.bypass_eligible(t) {
                k.bypass_resume(self.id, t);
            } else {
                k.wake_at(t, self.id);
                drop(k);
                self.block(BlockKind::Advance);
                k = self.kernel();
            }
        }
        k
    }

    /// Run `f` with mutable kernel access (for platform layers computing
    /// multi-resource message costs). Does not block or advance time beyond
    /// flushing this actor's lazily deferred delay.
    pub fn with_kernel<R>(&self, f: impl FnOnce(&mut Kernel) -> R) -> R {
        f(&mut self.kernel_synced())
    }

    /// Yield to the scheduler and suspend until woken: mark the block reason
    /// in the kernel, then switch back to the scheduler loop. On the
    /// coroutine backend this is a user-space context switch — no futex, no
    /// kernel round trip.
    fn block(&self, on: BlockKind) {
        {
            let mut k = self.kernel();
            debug_assert_ne!(k.actors[self.id].status, ActorStatus::Finished);
            if k.actors[self.id].status != ActorStatus::Runnable {
                k.mark_blocked(self.id, on);
            }
        }
        if coro::yield_parked() == ResumeArg::Shutdown {
            QUIET_UNWIND.with(|q| q.set(true));
            std::panic::panic_any(ShutdownSignal);
        }
    }

    /// Consume the timed-out flag set by an expired timed wait.
    fn take_timed_out(&self) -> bool {
        let mut k = self.kernel();
        std::mem::take(&mut k.actors[self.id].timed_out)
    }

    /// Charge `dt` of virtual time to this actor (pure delay, no resource).
    ///
    /// Fast path: when the resulting wake would be the strictly earliest
    /// pending event — the overwhelmingly common case — the clock advances
    /// inline and the actor keeps running, skipping the
    /// yield → scheduler → pop → resume round trip entirely.
    pub fn advance(&self, dt: Time) {
        // Any lazily deferred delay elapses first; merging it into this
        // charge keeps the combined delay a single logical advance.
        let dt = dt + self.deferred.swap(0, Ordering::Relaxed);
        if dt == 0 {
            return;
        }
        {
            let mut k = self.kernel();
            let t = k.now() + dt;
            if k.bypass_eligible(t) {
                k.bypass_resume(self.id, t);
                return;
            }
            let me = self.id;
            k.wake_at(t, me);
        }
        self.block(BlockKind::Advance);
    }

    /// Charge `dt` of virtual time *lazily*: the delay accumulates in the
    /// actor and is folded into its next kernel interaction (any simcall, or
    /// an explicit [`Ctx::advance`]) as one combined advance. Consecutive
    /// lazy charges coalesce — no lock, no event, no context switch — which
    /// makes this the cheapest way to express back-to-back modeled overheads.
    ///
    /// Semantically the total delay is charged as a *single* advance at the
    /// flush point; opt in only where intermediate wake points are not
    /// observable (no other actor can interact with this one in between),
    /// which is exactly the straight-line overhead-then-operation pattern.
    pub fn advance_lazy(&self, dt: Time) {
        self.deferred.fetch_add(dt, Ordering::Relaxed);
    }

    /// Charge a FIFO service of `service` time on `res`, blocking until the
    /// service completes (this is how compute-on-a-core and memory-traffic
    /// charges are expressed). Takes the same scheduler-bypass fast path as
    /// [`Ctx::advance`] when the service completion is the next event.
    pub fn acquire(&self, res: ResourceId, service: Time) {
        {
            let mut k = self.kernel_synced();
            let t = k.acquire(res, service);
            if k.bypass_eligible(t) {
                k.bypass_resume(self.id, t);
                return;
            }
            let me = self.id;
            k.wake_at(t, me);
        }
        self.block(BlockKind::Resource(res));
    }

    /// Block until `comp` fires. Returns immediately if it already has.
    pub fn wait(&self, comp: CompletionId) {
        {
            let mut k = self.kernel_synced();
            if k.is_complete(comp) {
                return;
            }
            k.add_completion_waiter(comp, self.id);
            let me = self.id;
            k.mark_blocked(me, BlockKind::Completion(comp));
        }
        self.block(BlockKind::Completion(comp));
    }

    /// Like [`Ctx::wait`], but give up after `timeout` of virtual time: the
    /// waiter is withdrawn and `Err(WaitTimedOut)` returned. The completion
    /// itself is unaffected and may still fire later.
    pub fn wait_timeout(&self, comp: CompletionId, timeout: Time) -> Result<(), WaitTimedOut> {
        {
            let mut k = self.kernel_synced();
            if k.is_complete(comp) {
                return Ok(());
            }
            k.add_completion_waiter(comp, self.id);
            let me = self.id;
            k.mark_blocked(me, BlockKind::Completion(comp));
            let deadline = k.now() + timeout;
            k.schedule_timeout(me, deadline);
        }
        self.block(BlockKind::Completion(comp));
        if self.take_timed_out() {
            Err(WaitTimedOut)
        } else {
            Ok(())
        }
    }

    /// Non-blocking poll of a completion.
    pub fn test(&self, comp: CompletionId) -> bool {
        self.kernel_synced().is_complete(comp)
    }

    /// Park on a condition variable (standalone; re-check your predicate on
    /// wake — wakes are targeted but predicates are the caller's business).
    pub fn cond_wait(&self, cond: CondId) {
        {
            let mut k = self.kernel_synced();
            k.add_cond_waiter(cond, self.id);
            let me = self.id;
            k.mark_blocked(me, BlockKind::Cond(cond));
        }
        self.block(BlockKind::Cond(cond));
    }

    /// Wake one actor parked on `cond`.
    pub fn cond_notify_one(&self, cond: CondId) -> bool {
        self.kernel_synced().cond_notify_one(cond)
    }

    /// Wake all actors parked on `cond`.
    pub fn cond_notify_all(&self, cond: CondId) -> usize {
        self.kernel_synced().cond_notify_all(cond)
    }

    /// Arrive at `bar` and block until all parties have arrived. The barrier
    /// releases everyone at the last arrival time plus `release_cost`.
    pub fn barrier_wait_cost(&self, bar: BarrierId, release_cost: Time) {
        let released_now = {
            let mut k = self.kernel_synced();
            let me = self.id;
            let last = k.barrier_arrive(bar, me, release_cost);
            if !last {
                k.mark_blocked(me, BlockKind::Barrier(bar));
            }
            last
        };
        if released_now {
            self.advance(release_cost);
        } else {
            self.block(BlockKind::Barrier(bar));
        }
    }

    /// [`Ctx::barrier_wait_cost`] with zero release cost.
    pub fn barrier_wait(&self, bar: BarrierId) {
        self.barrier_wait_cost(bar, 0);
    }

    /// Arrive at `bar` but give up after `timeout` if the barrier has not
    /// released by then. On timeout the arrival is withdrawn (the barrier
    /// will need `parties` fresh arrivals to release — it is effectively
    /// broken for this round, which is exactly what the caller should
    /// surface) and `Err(WaitTimedOut)` is returned.
    pub fn barrier_wait_timeout_cost(
        &self,
        bar: BarrierId,
        release_cost: Time,
        timeout: Time,
    ) -> Result<(), WaitTimedOut> {
        let released_now = {
            let mut k = self.kernel_synced();
            let me = self.id;
            let last = k.barrier_arrive(bar, me, release_cost);
            if !last {
                k.mark_blocked(me, BlockKind::Barrier(bar));
                let deadline = k.now() + timeout;
                k.schedule_timeout(me, deadline);
            }
            last
        };
        if released_now {
            self.advance(release_cost);
            return Ok(());
        }
        self.block(BlockKind::Barrier(bar));
        if self.take_timed_out() {
            Err(WaitTimedOut)
        } else {
            Ok(())
        }
    }

    /// Acquire a simulated mutex (FIFO fair), blocking if held.
    pub fn mutex_lock(&self, m: MutexId) {
        let got = {
            let mut k = self.kernel_synced();
            let me = self.id;
            let got = k.mutex_lock_or_enqueue(m, me);
            if !got {
                k.mark_blocked(me, BlockKind::Mutex(m));
            }
            got
        };
        if !got {
            self.block(BlockKind::Mutex(m));
        }
    }

    /// Try to acquire without blocking.
    pub fn mutex_try_lock(&self, m: MutexId) -> bool {
        let me = self.id;
        self.kernel_synced().mutex_try_lock(m, me)
    }

    /// Release a simulated mutex; panics if this actor is not the owner.
    pub fn mutex_unlock(&self, m: MutexId) {
        let me = self.id;
        self.kernel_synced().mutex_unlock(m, me);
    }

    /// Spawn a child actor starting at the current time, homed on this
    /// actor's LP. The child is a full actor (own coroutine stack, created
    /// lazily at its first wake); join via
    /// `ctx.wait(child.exit_completion())`.
    pub fn spawn<F>(&self, name: impl Into<String>, body: F) -> ActorRef
    where
        F: FnOnce(&Ctx) + Send + 'static,
    {
        let stack = self.shared.stack_size.load(Ordering::SeqCst);
        self.spawn_with_stack(name, stack, body)
    }

    /// Spawn a child actor homed on logical process `lp`. For a cross-LP
    /// target the child starts at `now + lookahead` (the cross-LP event
    /// contract), not `now` — and joining it from this actor would violate
    /// the same contract (the exit wake would land below the floor), so
    /// cross-LP children must be fire-and-forget or synchronize through
    /// events at `≥ now + lookahead`.
    pub fn spawn_on<F>(&self, lp: usize, name: impl Into<String>, body: F) -> ActorRef
    where
        F: FnOnce(&Ctx) + Send + 'static,
    {
        let stack = self.shared.stack_size.load(Ordering::SeqCst);
        drop(self.kernel_synced()); // flush lazy delay before reading `now`
        register_actor(&self.shared, name.into(), stack, Box::new(body), 0, lp, self.lp)
    }

    /// [`Ctx::spawn`] with an explicit stack size (bytes) for the child.
    pub fn spawn_with_stack<F>(
        &self,
        name: impl Into<String>,
        stack_bytes: usize,
        body: F,
    ) -> ActorRef
    where
        F: FnOnce(&Ctx) + Send + 'static,
    {
        drop(self.kernel_synced()); // flush lazy delay before reading `now`
        register_actor(
            &self.shared,
            name.into(),
            stack_bytes,
            Box::new(body),
            0,
            self.lp,
            self.lp,
        )
    }

    /// Block until `child` has finished.
    pub fn join(&self, child: ActorRef) {
        self.wait(child.exit_completion());
    }

    // ----- structured tracing (observationally free) ----------------------

    /// The tracer this actor captured at start, if any.
    #[cfg(feature = "trace")]
    pub fn tracer(&self) -> Option<&Arc<hupc_trace::Tracer>> {
        self.tracer.as_ref()
    }

    /// Whether full event recording is active (use to skip payload
    /// computation at call sites; `trace_emit` re-checks anyway).
    #[cfg(feature = "trace")]
    #[inline]
    pub fn tracing(&self) -> bool {
        self.tracer
            .as_ref()
            .is_some_and(|t| t.enabled(hupc_trace::TraceLevel::Full))
    }

    /// Emit a structured event stamped with this actor's current virtual
    /// time (including lazily deferred delay). Never advances time.
    #[cfg(feature = "trace")]
    #[inline]
    pub fn trace_emit(&self, kind: hupc_trace::EventKind, a: u64, b: u64) {
        if let Some(t) = &self.tracer {
            if t.enabled(hupc_trace::TraceLevel::Full) {
                t.emit(self.now(), self.id as u32, kind, a, b);
            }
        }
    }

    /// Bump a metrics counter (active at `Counters` level and above).
    #[cfg(feature = "trace")]
    #[inline]
    pub fn trace_count(&self, name: &'static str, loc: hupc_trace::Loc, v: u64) {
        if let Some(t) = &self.tracer {
            t.count(name, loc, v);
        }
    }

    /// Record a metrics histogram observation (at `Counters` and above).
    #[cfg(feature = "trace")]
    #[inline]
    pub fn trace_observe(&self, name: &'static str, loc: hupc_trace::Loc, v: u64) {
        if let Some(t) = &self.tracer {
            t.observe(name, loc, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn single_actor_advances_time() {
        let mut sim = Simulation::new();
        sim.spawn("a", |ctx| {
            assert_eq!(ctx.now(), 0);
            ctx.advance(time::us(5));
            assert_eq!(ctx.now(), time::us(5));
        });
        let stats = sim.run();
        assert_eq!(stats.end_time, time::us(5));
        assert_eq!(stats.actors, 1);
    }

    #[test]
    fn actors_interleave_deterministically() {
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut sim = Simulation::new();
        for id in 0..3u64 {
            let order = Arc::clone(&order);
            sim.spawn(format!("a{id}"), move |ctx| {
                ctx.advance(time::us(10 - id)); // a2 finishes first
                order.lock().unwrap().push(id);
            });
        }
        sim.run();
        assert_eq!(*order.lock().unwrap(), vec![2, 1, 0]);
    }

    #[test]
    fn barrier_releases_at_max_arrival() {
        let mut sim = Simulation::new();
        let bar = sim.kernel().new_barrier(3);
        for id in 0..3u64 {
            sim.spawn(format!("a{id}"), move |ctx| {
                ctx.advance(time::us(id + 1));
                ctx.barrier_wait(bar);
                assert_eq!(ctx.now(), time::us(3));
            });
        }
        sim.run();
    }

    #[test]
    fn barrier_release_cost_applies_to_everyone() {
        let mut sim = Simulation::new();
        let bar = sim.kernel().new_barrier(2);
        for id in 0..2u64 {
            sim.spawn(format!("a{id}"), move |ctx| {
                ctx.advance(time::us(id));
                ctx.barrier_wait_cost(bar, time::us(7));
                assert_eq!(ctx.now(), time::us(1) + time::us(7));
            });
        }
        sim.run();
    }

    #[test]
    fn barrier_is_reusable() {
        let mut sim = Simulation::new();
        let bar = sim.kernel().new_barrier(2);
        for id in 0..2u64 {
            sim.spawn(format!("a{id}"), move |ctx| {
                for round in 0..5u64 {
                    ctx.advance(time::us(id + 1));
                    ctx.barrier_wait(bar);
                    let _ = round;
                }
            });
        }
        sim.run();
    }

    #[cfg(feature = "trace")]
    #[test]
    fn structured_tracer_records_kernel_events_without_perturbing_time() {
        use hupc_trace::{EventKind as K, TraceLevel, Tracer};

        fn run(tracer: Option<Arc<Tracer>>) -> SimulationStats {
            let mut sim = Simulation::new();
            sim.set_tracer(tracer);
            let bar = sim.kernel().new_barrier(2);
            for id in 0..2u64 {
                sim.spawn(format!("a{id}"), move |ctx| {
                    ctx.advance(time::us(id + 1));
                    ctx.barrier_wait(bar); // parks + scheduler wakes
                    if id == 0 {
                        // Runs on after a1 finished: sole live actor, so
                        // these advances take the bypass fast path.
                        ctx.advance(time::us(1));
                        ctx.advance(time::us(2));
                    }
                });
            }
            sim.run()
        }

        let plain = run(None);
        let tracer = Arc::new(Tracer::new(TraceLevel::Full));
        let traced = run(Some(Arc::clone(&tracer)));
        // Observationally free: identical stats with and without recording.
        assert_eq!(plain, traced);
        let merged = tracer.merge();
        assert!(!merged.is_empty());
        // Totally ordered by (time, seq); seqs unique.
        assert!(merged
            .windows(2)
            .all(|w| (w[0].time, w[0].seq) < (w[1].time, w[1].seq)));
        // The run exercises both the fast path and the full scheduler path.
        assert!(merged.iter().any(|e| e.kind == K::FastPathBypass));
        assert!(merged.iter().any(|e| e.kind == K::Wake));
        assert!(merged.iter().any(|e| e.kind == K::Park));
        assert!(merged.iter().any(|e| e.kind == K::Schedule));
        assert_eq!(tracer.events_dropped(), 0);
    }

    #[test]
    fn resource_contention_serializes() {
        let mut sim = Simulation::new();
        let res = sim.kernel().new_resource("link");
        let ends = Arc::new(Mutex::new(Vec::new()));
        for id in 0..3u64 {
            let ends = Arc::clone(&ends);
            sim.spawn(format!("a{id}"), move |ctx| {
                ctx.acquire(res, time::us(10));
                ends.lock().unwrap().push((id, ctx.now()));
            });
        }
        sim.run();
        let ends = ends.lock().unwrap();
        // All three requested at t=0; FIFO order by spawn (= event seq).
        assert_eq!(*ends, vec![
            (0, time::us(10)),
            (1, time::us(20)),
            (2, time::us(30)),
        ]);
    }

    #[test]
    fn completion_wait_and_test() {
        let mut sim = Simulation::new();
        let comp = sim.kernel().new_completion();
        sim.spawn("setter", move |ctx| {
            ctx.advance(time::us(50));
            ctx.with_kernel(|k| {
                let now = k.now();
                k.complete_at(now, comp);
            });
        });
        sim.spawn("waiter", move |ctx| {
            assert!(!ctx.test(comp));
            ctx.wait(comp);
            assert_eq!(ctx.now(), time::us(50));
            assert!(ctx.test(comp));
        });
        sim.run();
    }

    #[test]
    fn mutex_is_fifo_fair() {
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut sim = Simulation::new();
        let m = sim.kernel().new_mutex();
        for id in 0..3u64 {
            let order = Arc::clone(&order);
            sim.spawn(format!("a{id}"), move |ctx| {
                ctx.advance(time::ns(id)); // stagger lock attempts
                ctx.mutex_lock(m);
                order.lock().unwrap().push(id);
                ctx.advance(time::us(10));
                ctx.mutex_unlock(m);
            });
        }
        sim.run();
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn dynamic_spawn_and_join() {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut sim = Simulation::new();
        let c2 = Arc::clone(&counter);
        sim.spawn("parent", move |ctx| {
            let children: Vec<ActorRef> = (0..4)
                .map(|i| {
                    let c = Arc::clone(&c2);
                    ctx.spawn(format!("child{i}"), move |cctx| {
                        cctx.advance(time::us(i + 1));
                        c.fetch_add(1, Ordering::Relaxed);
                    })
                })
                .collect();
            for ch in children {
                ctx.join(ch);
            }
            assert_eq!(ctx.now(), time::us(4));
        });
        let stats = sim.run();
        assert_eq!(counter.load(Ordering::Relaxed), 4);
        assert_eq!(stats.actors, 5);
    }

    #[test]
    fn cond_wait_notify() {
        let mut sim = Simulation::new();
        let cond = sim.kernel().new_cond();
        let flag = Arc::new(AtomicUsize::new(0));
        let f2 = Arc::clone(&flag);
        sim.spawn("waiter", move |ctx| {
            while f2.load(Ordering::Relaxed) == 0 {
                ctx.cond_wait(cond);
            }
            assert_eq!(ctx.now(), time::us(30));
        });
        let f3 = Arc::clone(&flag);
        sim.spawn("notifier", move |ctx| {
            ctx.advance(time::us(30));
            f3.store(1, Ordering::Relaxed);
            ctx.cond_notify_all(cond);
        });
        sim.run();
    }

    #[test]
    #[should_panic(expected = "actor panicked")]
    fn actor_panic_propagates() {
        let mut sim = Simulation::new();
        sim.spawn("boom", |_ctx| panic!("kaboom"));
        sim.run();
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn deadlock_is_detected() {
        let mut sim = Simulation::new();
        let m = sim.kernel().new_mutex();
        let bar = sim.kernel().new_barrier(2);
        sim.spawn("a", move |ctx| {
            ctx.mutex_lock(m);
            ctx.barrier_wait(bar);
        });
        sim.spawn("b", move |ctx| {
            ctx.advance(1);
            ctx.mutex_lock(m); // never released while a waits at barrier
            ctx.barrier_wait(bar);
        });
        sim.run();
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        fn run_once() -> (Time, u64) {
            let mut sim = Simulation::new();
            let res = sim.kernel().new_resource("r");
            let bar = sim.kernel().new_barrier(4);
            for id in 0..4u64 {
                sim.spawn(format!("a{id}"), move |ctx| {
                    for i in 0..10u64 {
                        ctx.acquire(res, time::ns(100 + id * 13 + i * 7));
                        ctx.barrier_wait(bar);
                    }
                });
            }
            let stats = sim.run();
            (stats.end_time, stats.events)
        }
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn drop_without_run_does_not_hang() {
        let mut sim = Simulation::new();
        sim.spawn("never-ran", |ctx| {
            ctx.advance(time::secs(100));
        });
        drop(sim); // must tear down the pending actor promptly
    }

    #[test]
    fn drop_after_partial_run_tears_down_suspended_actors() {
        // One actor panics at t=1; the other is left suspended at a barrier.
        // Dropping the simulation must unwind the suspended actor cleanly.
        for backend in [ActorBackend::Coroutine, ActorBackend::OsThread] {
            let mut sim = Simulation::new();
            sim.set_actor_backend(backend);
            let bar = sim.kernel().new_barrier(2);
            sim.spawn("stuck", move |ctx| {
                ctx.barrier_wait(bar);
            });
            sim.spawn("boom", |ctx| {
                ctx.advance(1);
                panic!("kaboom");
            });
            assert!(matches!(
                sim.run_result().unwrap_err(),
                SimError::ActorPanic { .. }
            ));
            drop(sim);
        }
    }

    #[test]
    fn actor_names_and_ids() {
        let mut sim = Simulation::new();
        let a = sim.spawn("alpha", |ctx| {
            assert_eq!(ctx.name(), "alpha");
            assert_eq!(ctx.actor_id(), 0);
        });
        assert_eq!(a.id, 0);
        sim.run();
    }

    #[test]
    fn actor_tag_is_per_actor_not_per_thread() {
        // Two actors interleave; each sets its own tag and must never see
        // the other's. (On OS-thread TLS this held trivially; with
        // coroutines sharing one thread, it is the actor-local tag that
        // preserves it.)
        let mut sim = Simulation::new();
        let bar = sim.kernel().new_barrier(2);
        for id in 0..2u64 {
            sim.spawn(format!("a{id}"), move |ctx| {
                assert_eq!(ctx.actor_tag(), 0);
                ctx.set_actor_tag(100 + id);
                ctx.barrier_wait(bar); // the other actor runs in between
                assert_eq!(ctx.actor_tag(), 100 + id);
                ctx.barrier_wait(bar);
                assert_eq!(ctx.actor_tag(), 100 + id);
            });
        }
        sim.run();
    }

    #[test]
    fn backends_produce_identical_event_logs_and_stats() {
        // The same program — barriers, a contended resource, a mutex,
        // dynamic spawn — must produce byte-identical event logs and stats
        // on the coroutine and OS-thread backends.
        fn run_once(backend: ActorBackend) -> (Vec<crate::kernel::TraceEvent>, SimulationStats) {
            let mut sim = Simulation::new();
            sim.set_actor_backend(backend);
            sim.kernel().record_event_log(true);
            let res = sim.kernel().new_resource("r");
            let bar = sim.kernel().new_barrier(2);
            let m = sim.kernel().new_mutex();
            for id in 0..2u64 {
                sim.spawn(format!("a{id}"), move |ctx| {
                    for i in 0..4u64 {
                        ctx.advance(time::ns(3 + id * 7));
                        ctx.acquire(res, time::ns(50 + i));
                        ctx.mutex_lock(m);
                        ctx.advance(time::ns(5));
                        ctx.mutex_unlock(m);
                        ctx.barrier_wait(bar);
                    }
                    if id == 0 {
                        let child = ctx.spawn("kid", |c| c.advance(time::us(1)));
                        ctx.join(child);
                    }
                });
            }
            let stats = sim.run();
            let log = sim.kernel().take_event_log();
            (log, stats)
        }
        let coro = run_once(ActorBackend::Coroutine);
        let thread = run_once(ActorBackend::OsThread);
        assert_eq!(coro, thread);
    }

    #[test]
    fn spawn_with_stack_runs_on_small_stacks() {
        let mut sim = Simulation::new();
        sim.set_stack_size(32 * 1024);
        assert_eq!(sim.stack_size(), 32 * 1024);
        let n = 200;
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        sim.spawn_with_stack("parent", 64 * 1024, move |ctx| {
            let kids: Vec<ActorRef> = (0..n)
                .map(|i| {
                    let c = Arc::clone(&c);
                    ctx.spawn_with_stack(format!("k{i}"), 16 * 1024, move |k| {
                        k.advance(time::ns(i as u64 + 1));
                        c.fetch_add(1, Ordering::Relaxed);
                    })
                })
                .collect();
            for k in kids {
                ctx.join(k);
            }
        });
        let stats = sim.run();
        assert_eq!(counter.load(Ordering::Relaxed), n);
        assert_eq!(stats.actors, n + 1);
    }

    #[test]
    fn deadlock_report_names_actors_and_primitives() {
        // "miner" holds the mutex and parks at a barrier nobody else will
        // reach; "hauler" queues on the mutex. The wait graph must name both
        // actors and say which primitive each one is stuck on.
        let mut sim = Simulation::new();
        let m = sim.kernel().new_mutex();
        let bar = sim.kernel().new_barrier(2);
        sim.spawn("miner", move |ctx| {
            ctx.mutex_lock(m);
            ctx.barrier_wait(bar);
        });
        sim.spawn("hauler", move |ctx| {
            ctx.advance(1);
            ctx.mutex_lock(m);
            ctx.barrier_wait(bar);
        });
        let err = sim.run_result().unwrap_err();
        match &err {
            SimError::Deadlock { time, wait_graph } => {
                assert_eq!(*time, 1);
                assert_eq!(wait_graph.edges.len(), 2);
                let text = wait_graph.to_string();
                assert!(text.contains("miner"), "missing actor name: {text}");
                assert!(text.contains("hauler"), "missing actor name: {text}");
                assert!(text.contains("barrier"), "missing primitive: {text}");
                assert!(text.contains("mutex"), "missing primitive: {text}");
                // the mutex edge reports its current owner
                assert!(text.contains("held by actor 0 'miner'"), "{text}");
            }
            other => panic!("expected Deadlock, got {other}"),
        }
        let rendered = err.to_string();
        assert!(rendered.contains("simulation deadlock at t=1"), "{rendered}");
    }

    #[test]
    fn schedule_policy_reorders_ties_only() {
        use crate::kernel::{ReadyEvent, SchedulePolicy};

        /// Always dispatch the *last* member of a tie (reverse of default).
        struct PickLast(u64);
        impl SchedulePolicy for PickLast {
            fn choose(&mut self, ready: &[ReadyEvent]) -> usize {
                assert!(ready.len() > 1, "policy consulted without a tie");
                assert!(ready.windows(2).all(|w| w[0].seq < w[1].seq));
                self.0 += 1;
                ready.len() - 1
            }
        }

        fn run_once(policy: bool) -> (Vec<u64>, Time) {
            let order = Arc::new(Mutex::new(Vec::new()));
            let mut sim = Simulation::new();
            if policy {
                sim.set_schedule_policy(Some(Box::new(PickLast(0))));
            }
            for id in 0..3u64 {
                let order = Arc::clone(&order);
                sim.spawn(format!("a{id}"), move |ctx| {
                    // The only tie is the three initial wakes at t=0; record
                    // dispatch order, then advance distinct amounts.
                    order.lock().unwrap().push(id);
                    ctx.advance(time::us(10 + id));
                });
            }
            let stats = sim.run();
            let order = order.lock().unwrap().clone();
            (order, stats.end_time)
        }

        let (default_order, t0) = run_once(false);
        let (reversed, t1) = run_once(true);
        assert_eq!(default_order, vec![0, 1, 2]);
        // Ties reorder; virtual end time is untouched (same instants).
        assert_eq!(reversed, vec![2, 1, 0]);
        assert_eq!(t0, t1);
    }

    #[test]
    fn schedule_policy_is_not_consulted_without_ties() {
        use crate::kernel::{ReadyEvent, SchedulePolicy};
        struct MustNotRun;
        impl SchedulePolicy for MustNotRun {
            fn choose(&mut self, _ready: &[ReadyEvent]) -> usize {
                panic!("no ties exist in this program");
            }
        }
        // Stagger every start so no two events ever share an instant: the
        // parent spawns children at distinct times and each child advances a
        // distinct amount.
        let mut sim = Simulation::new();
        sim.set_schedule_policy(Some(Box::new(MustNotRun)));
        sim.spawn("parent", |ctx| {
            for id in 0..3u64 {
                ctx.advance(time::us(1));
                ctx.spawn(format!("a{id}"), move |cctx| {
                    cctx.advance(time::us(100 + 10 * id));
                });
            }
        });
        sim.run();
    }

    #[test]
    fn deadlock_report_includes_activity_tail() {
        let mut sim = Simulation::new();
        let bar = sim.kernel().new_barrier(2);
        sim.spawn("stuck", move |ctx| {
            ctx.advance(time::us(3));
            ctx.barrier_wait(bar); // second party never arrives
        });
        let err = sim.run_result().unwrap_err();
        let SimError::Deadlock { wait_graph, .. } = &err else {
            panic!("expected Deadlock, got {err}");
        };
        assert_eq!(wait_graph.edges.len(), 1);
        let e = &wait_graph.edges[0];
        // Typed fields: park time plus the compact activity tail.
        assert_eq!(e.blocked_since, time::us(3));
        assert_eq!(
            e.recent,
            vec![
                "sched@0ns->0ns".to_string(),     // spawn schedules first wake
                "bypass@3.00us".to_string(),      // lone advance takes fast path
                "park@3.00us(barrier#0)".to_string(),
            ]
        );
        // Rendered report pins the format.
        let text = wait_graph.to_string();
        assert!(
            text.contains("blocked since t=3.00us; recent: [sched@0ns->0ns, bypass@3.00us, park@3.00us(barrier#0)]"),
            "unexpected report format:\n{text}"
        );
    }

    #[test]
    fn panic_inside_with_kernel_is_reported_typed() {
        // A panic while *holding the kernel lock* poisons the kernel mutex;
        // the typed note must still come through run_result.
        let mut sim = Simulation::new();
        sim.spawn("locked-boom", |ctx| {
            ctx.advance(1);
            ctx.with_kernel(|_k| panic!("boom under lock"));
        });
        match sim.run_result().unwrap_err() {
            SimError::ActorPanic { actor, name, message } => {
                assert_eq!(actor, 0);
                assert_eq!(name, "locked-boom");
                assert!(message.contains("boom under lock"), "{message}");
            }
            other => panic!("expected ActorPanic, got {other}"),
        }
    }

    #[test]
    fn first_of_concurrent_panics_wins() {
        // Two actors panic at the same virtual time; the first dispatched
        // panic is the one reported, and the run still tears down cleanly.
        let mut sim = Simulation::new();
        for id in 0..2u64 {
            sim.spawn(format!("boom{id}"), move |ctx| {
                ctx.advance(time::us(5));
                panic!("kaboom {id}");
            });
        }
        match sim.run_result().unwrap_err() {
            SimError::ActorPanic { actor, message, .. } => {
                assert_eq!(actor, 0);
                assert!(message.contains("kaboom 0"), "{message}");
            }
            other => panic!("expected ActorPanic, got {other}"),
        }
    }

    #[test]
    fn run_result_reports_actor_panic() {
        let mut sim = Simulation::new();
        sim.spawn("ok", |ctx| ctx.advance(5));
        sim.spawn("boom", |ctx| {
            ctx.advance(1);
            panic!("kaboom");
        });
        match sim.run_result().unwrap_err() {
            SimError::ActorPanic { actor, name, message } => {
                assert_eq!(actor, 1);
                assert_eq!(name, "boom");
                assert!(message.contains("kaboom"), "{message}");
            }
            other => panic!("expected ActorPanic, got {other}"),
        }
    }

    #[test]
    fn wait_timeout_expires_and_succeeds() {
        let mut sim = Simulation::new();
        let comp = sim.kernel().new_completion();
        sim.spawn("setter", move |ctx| {
            ctx.advance(time::us(50));
            ctx.with_kernel(|k| {
                let now = k.now();
                k.complete_at(now, comp);
            });
        });
        sim.spawn("waiter", move |ctx| {
            // too short: expires at t=10
            assert!(ctx.wait_timeout(comp, time::us(10)).is_err());
            assert_eq!(ctx.now(), time::us(10));
            // long enough: returns at completion time, not at the deadline
            assert!(ctx.wait_timeout(comp, time::secs(1)).is_ok());
            assert_eq!(ctx.now(), time::us(50));
            // already complete: immediate success
            assert!(ctx.wait_timeout(comp, 1).is_ok());
            assert_eq!(ctx.now(), time::us(50));
        });
        sim.run();
    }

    #[test]
    fn barrier_wait_timeout_expires() {
        let mut sim = Simulation::new();
        let bar = sim.kernel().new_barrier(2);
        sim.spawn("present", move |ctx| {
            let r = ctx.barrier_wait_timeout_cost(bar, 0, time::us(20));
            assert!(r.is_err(), "nobody else ever arrives");
            assert_eq!(ctx.now(), time::us(20));
        });
        sim.spawn("absent", move |ctx| {
            // never joins the barrier; outlives the waiter's deadline
            ctx.advance(time::us(100));
        });
        sim.run();
    }

    #[test]
    fn barrier_wait_timeout_releases_normally() {
        let mut sim = Simulation::new();
        let bar = sim.kernel().new_barrier(2);
        for id in 0..2u64 {
            sim.spawn(format!("a{id}"), move |ctx| {
                ctx.advance(time::us(id + 1));
                let r = ctx.barrier_wait_timeout_cost(bar, 0, time::secs(1));
                assert!(r.is_ok());
                // normal release at the max arrival, not at the deadline
                assert_eq!(ctx.now(), time::us(2));
            });
        }
        sim.run();
    }

    #[test]
    fn fast_path_resolves_lone_advances_inline() {
        let mut sim = Simulation::new();
        sim.spawn("solo", |ctx| {
            for _ in 0..1000 {
                ctx.advance(time::ns(10));
            }
        });
        let stats = sim.run();
        assert_eq!(stats.end_time, time::us(10));
        // every advance after the initial wake bypasses the scheduler
        assert_eq!(stats.fast_path_hits, 1000);
        assert_eq!(stats.handoffs, 1, "only the initial wake needs a handoff");
        assert_eq!(stats.events, 1001);
    }

    #[test]
    fn fast_path_stats_off_means_zero_hits() {
        let mut sim = Simulation::new();
        sim.set_fast_path(false);
        sim.spawn("solo", |ctx| {
            for _ in 0..100 {
                ctx.advance(time::ns(10));
            }
        });
        let stats = sim.run();
        assert_eq!(stats.fast_path_hits, 0);
        assert_eq!(stats.handoffs, 101);
        assert_eq!(stats.events, 101);
    }

    #[test]
    fn fast_path_on_off_traces_are_identical() {
        // Two interleaved actors + a resource + a barrier: the same program
        // must produce the same full event trace either way.
        fn run_once(fast: bool) -> (Vec<crate::kernel::TraceEvent>, Time, u64) {
            let mut sim = Simulation::new();
            sim.set_fast_path(fast);
            sim.kernel().record_event_log(true);
            let res = sim.kernel().new_resource("r");
            let bar = sim.kernel().new_barrier(2);
            for id in 0..2u64 {
                sim.spawn(format!("a{id}"), move |ctx| {
                    for i in 0..5u64 {
                        ctx.advance(time::ns(3 + id * 7));
                        ctx.acquire(res, time::ns(50 + i));
                        ctx.barrier_wait(bar);
                    }
                });
            }
            let stats = sim.run();
            let log = sim.kernel().take_event_log();
            (log, stats.end_time, stats.events)
        }
        let slow = run_once(false);
        let fast = run_once(true);
        assert_eq!(slow, fast);
    }

    #[test]
    fn lazy_advance_coalesces_until_flush() {
        let mut sim = Simulation::new();
        sim.spawn("lazy", |ctx| {
            ctx.advance_lazy(time::ns(10));
            ctx.advance_lazy(time::ns(20));
            // now() sees the deferred delay without flushing it
            assert_eq!(ctx.now(), time::ns(30));
            // a kernel interaction flushes it as one combined advance
            ctx.with_kernel(|k| assert_eq!(k.now(), time::ns(30)));
            ctx.advance_lazy(time::ns(5));
            ctx.advance(time::ns(5)); // merges deferred 5 + explicit 5
            assert_eq!(ctx.now(), time::ns(40));
        });
        let stats = sim.run();
        assert_eq!(stats.end_time, time::ns(40));
        // initial wake + two flushes = 3 events; both flushes bypassed
        assert_eq!(stats.events, 3);
        assert_eq!(stats.fast_path_hits, 2);
    }

    #[test]
    fn lazy_advance_flushes_before_blocking_ops() {
        let mut sim = Simulation::new();
        let bar = sim.kernel().new_barrier(2);
        sim.spawn("lazy", move |ctx| {
            ctx.advance_lazy(time::us(3));
            ctx.barrier_wait(bar); // must charge the 3us before arriving
            assert_eq!(ctx.now(), time::us(3));
        });
        sim.spawn("prompt", move |ctx| {
            ctx.barrier_wait(bar);
            assert_eq!(ctx.now(), time::us(3));
        });
        sim.run();
    }

    #[test]
    fn fast_path_defers_to_earlier_or_equal_events() {
        // A completion scheduled at the same instant an advance would end
        // must fire first (smaller sequence number) — the advance may not
        // bypass past it.
        let mut sim = Simulation::new();
        let comp = sim.kernel().new_completion();
        sim.spawn("a", move |ctx| {
            ctx.with_kernel(|k| k.complete_at(time::us(10), comp));
            assert!(!ctx.test(comp));
            ctx.advance(time::us(10));
            assert!(ctx.test(comp), "completion at t=10 fired before resume");
        });
        let stats = sim.run();
        assert_eq!(stats.end_time, time::us(10));
    }

    #[test]
    fn stale_timeout_does_not_disturb_later_waits() {
        // A wake that races a timeout must invalidate it: after the first
        // wait completes just before its deadline, the actor keeps running
        // and later blocking ops must not be woken by the stale timeout.
        let mut sim = Simulation::new();
        let c1 = sim.kernel().new_completion();
        sim.spawn("setter", move |ctx| {
            ctx.advance(time::us(10));
            ctx.with_kernel(|k| {
                let now = k.now();
                k.complete_at(now, c1);
            });
        });
        sim.spawn("waiter", move |ctx| {
            // completes at t=10, deadline at t=11: wake wins, timeout is stale
            assert!(ctx.wait_timeout(c1, time::us(11)).is_ok());
            assert_eq!(ctx.now(), time::us(10));
            // now advance across t=11; the stale Timeout event must be inert
            ctx.advance(time::us(100));
            assert_eq!(ctx.now(), time::us(110));
        });
        sim.run();
    }

    // ----- conservative parallel backend ----------------------------------

    /// A single-LP workload (the shape every existing app has) with enough
    /// scheduler traffic to exercise bypass, barriers, contention and
    /// dynamic spawn.
    fn single_lp_workload(backend: SimBackend) -> (Vec<crate::kernel::TraceEvent>, SimulationStats) {
        let mut sim = Simulation::new();
        sim.set_sim_backend(backend);
        sim.kernel().record_event_log(true);
        let res = sim.kernel().new_resource("r");
        let bar = sim.kernel().new_barrier(2);
        for id in 0..2u64 {
            sim.spawn(format!("a{id}"), move |ctx| {
                for i in 0..4u64 {
                    ctx.advance(time::ns(3 + id * 7));
                    ctx.acquire(res, time::ns(50 + i));
                    ctx.barrier_wait(bar);
                }
                if id == 0 {
                    let child = ctx.spawn("kid", |c| c.advance(time::us(1)));
                    ctx.join(child);
                }
            });
        }
        let stats = sim.run();
        let log = sim.kernel().take_event_log();
        (log, stats)
    }

    #[test]
    fn parallel_single_lp_is_bit_identical_to_sequential() {
        // One LP means the parallel engine runs the full worker/pop_safe
        // machinery on one worker — and must reproduce the sequential run
        // exactly, stats included (same bypass decisions, same heap ops).
        let seq = single_lp_workload(SimBackend::Sequential);
        for n in [1, 2, 4] {
            let par = single_lp_workload(SimBackend::Parallel(n));
            assert_eq!(seq, par, "Parallel({n}) diverged from Sequential");
        }
    }

    /// A 4-LP workload: per-LP contention plus cross-LP fire-and-forget
    /// spawns, the partition contract every distributed app follows.
    fn multi_lp_workload(backend: SimBackend) -> (Vec<crate::kernel::TraceEvent>, SimulationStats) {
        let mut sim = Simulation::new();
        sim.set_sim_backend(backend);
        sim.set_lp_count(4);
        sim.set_lookahead(time::us(1));
        sim.kernel().record_event_log(true);
        for lp in 0..4usize {
            let res = sim.kernel().new_resource(format!("r{lp}"));
            for a in 0..2u64 {
                sim.spawn_on(lp, format!("lp{lp}a{a}"), move |ctx| {
                    assert_eq!(ctx.lp(), lp);
                    for i in 0..5u64 {
                        ctx.advance(time::ns(10 + a * 3 + i));
                        ctx.acquire(res, time::ns(40 + i));
                    }
                    if a == 0 {
                        let target = (lp + 1) % 4;
                        ctx.spawn_on(target, format!("x{lp}"), move |c| {
                            assert_eq!(c.lp(), target);
                            c.advance(time::ns(5));
                        });
                    }
                });
            }
        }
        let stats = sim.run();
        let log = sim.kernel().take_event_log();
        (log, stats)
    }

    #[test]
    fn parallel_multi_lp_matches_sequential_event_log_and_times() {
        // Across a real partition the dispatch interleaving is host-timing
        // dependent, but the committed event log (sorted by (t, seq)) and
        // the virtual outcome must be identical. Host-side counters
        // (bypass hits, handoffs, heap ops) legitimately differ.
        let seq = multi_lp_workload(SimBackend::Sequential);
        for n in [1, 2, 4] {
            let par = multi_lp_workload(SimBackend::Parallel(n));
            assert_eq!(seq.0, par.0, "Parallel({n}) event log diverged");
            assert_eq!(seq.1.end_time, par.1.end_time);
            assert_eq!(seq.1.events, par.1.events);
            assert_eq!(seq.1.actors, par.1.actors);
        }
    }

    #[test]
    fn cross_lp_spawn_starts_at_the_lookahead_floor() {
        let mut sim = Simulation::new();
        sim.set_sim_backend(SimBackend::Parallel(2));
        sim.set_lp_count(2);
        sim.set_lookahead(time::us(1));
        sim.spawn_on(0, "parent", |ctx| {
            ctx.advance(time::ns(50));
            ctx.spawn_on(1, "child", |c| {
                // The start wake is a cross-LP event: it lands no earlier
                // than the spawner's clock plus the lookahead.
                assert_eq!(c.now(), time::ns(50) + time::us(1));
            });
        });
        sim.run();
    }

    #[test]
    fn parallel_deadlock_reports_wait_graph() {
        let mut sim = Simulation::new();
        sim.set_sim_backend(SimBackend::Parallel(2));
        sim.set_lp_count(2);
        sim.set_lookahead(1);
        let c = sim.kernel().new_completion();
        sim.spawn_on(0, "stuck", move |ctx| ctx.wait(c));
        sim.spawn_on(1, "fine", |ctx| ctx.advance(time::us(1)));
        match sim.run_result() {
            Err(SimError::Deadlock { wait_graph, .. }) => {
                assert!(wait_graph.to_string().contains("stuck"));
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn parallel_actor_panic_propagates() {
        let mut sim = Simulation::new();
        sim.set_sim_backend(SimBackend::Parallel(2));
        sim.set_lp_count(2);
        sim.set_lookahead(1);
        sim.spawn_on(0, "ok", |ctx| ctx.advance(time::us(1)));
        sim.spawn_on(1, "bad", |ctx| {
            ctx.advance(time::ns(10));
            panic!("boom in parallel");
        });
        match sim.run_result() {
            Err(SimError::ActorPanic { name, message, .. }) => {
                assert_eq!(name, "bad");
                assert!(message.contains("boom in parallel"));
            }
            other => panic!("expected actor panic, got {other:?}"),
        }
    }

    #[test]
    fn parallel_with_policy_falls_back_to_sequential_dispatch() {
        use crate::kernel::{ReadyEvent, SchedulePolicy};
        struct PickLast;
        impl SchedulePolicy for PickLast {
            fn choose(&mut self, ready: &[ReadyEvent]) -> usize {
                ready.len() - 1
            }
        }
        // A tie-break policy forces the sequential loop even when a
        // parallel backend is selected, so `.schedule` replays behave
        // identically no matter the configured backend.
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut sim = Simulation::new();
        sim.set_sim_backend(SimBackend::Parallel(4));
        sim.set_schedule_policy(Some(Box::new(PickLast)));
        for id in 0..3u64 {
            let order = Arc::clone(&order);
            sim.spawn(format!("a{id}"), move |ctx| {
                order.lock().unwrap().push(id);
                ctx.advance(time::us(10 + id));
            });
        }
        sim.run();
        assert_eq!(*order.lock().unwrap(), vec![2, 1, 0]);
    }

    #[test]
    fn sim_backend_env_spellings_parse() {
        assert_eq!(parse_sim_backend("seq"), Some(SimBackend::Sequential));
        assert_eq!(parse_sim_backend("sequential"), Some(SimBackend::Sequential));
        assert_eq!(parse_sim_backend("parallel"), Some(SimBackend::Parallel(0)));
        assert_eq!(parse_sim_backend("parallel:4"), Some(SimBackend::Parallel(4)));
        assert_eq!(parse_sim_backend("par:2"), Some(SimBackend::Parallel(2)));
        assert_eq!(parse_sim_backend("bogus"), None);
        assert_eq!(parse_sim_backend("parallel:x"), None);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "set_stack_size after first dispatch")]
    fn set_stack_size_after_dispatch_is_rejected() {
        let mut sim = Simulation::new();
        sim.spawn("a", |ctx| ctx.advance(1));
        sim.run();
        // The stacks this call claims to size already exist.
        sim.set_stack_size(64 * 1024);
    }
}
