//! `SimCell` — shared mutable state for serialized actors.
//!
//! The engine guarantees that at most one actor executes at any instant, so
//! data shared between actors never sees concurrent access. `SimCell` makes
//! that guarantee usable from safe code: it is `Sync` and hands out scoped
//! references, with a runtime borrow flag (à la `RefCell`, but atomic so the
//! type stays `Sync`) catching accidental re-entrancy.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicIsize, Ordering};

/// An interior-mutability cell safe under the engine's one-actor-at-a-time
/// execution. Borrow violations (nested conflicting access from the same
/// actor) panic rather than alias.
pub struct SimCell<T: ?Sized> {
    /// >0: that many shared borrows; -1: one exclusive borrow; 0: free.
    borrows: AtomicIsize,
    inner: UnsafeCell<T>,
}

// SAFETY: the simulation engine serializes all actor execution, so accesses
// are never truly concurrent; the borrow counter enforces aliasing rules for
// re-entrant access within the running actor.
unsafe impl<T: ?Sized + Send> Sync for SimCell<T> {}
unsafe impl<T: ?Sized + Send> Send for SimCell<T> {}

impl<T> SimCell<T> {
    pub fn new(value: T) -> Self {
        SimCell {
            borrows: AtomicIsize::new(0),
            inner: UnsafeCell::new(value),
        }
    }

    /// Consume the cell, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> SimCell<T> {
    /// Shared access.
    pub fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        let prev = self.borrows.fetch_add(1, Ordering::Relaxed);
        assert!(prev >= 0, "SimCell: shared borrow while exclusively borrowed");
        // SAFETY: engine serialization + borrow counter (checked above).
        let r = f(unsafe { &*self.inner.get() });
        self.borrows.fetch_sub(1, Ordering::Relaxed);
        r
    }

    /// Exclusive access.
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        let prev = self
            .borrows
            .compare_exchange(0, -1, Ordering::Relaxed, Ordering::Relaxed);
        assert!(
            prev.is_ok(),
            "SimCell: exclusive borrow while already borrowed"
        );
        // SAFETY: engine serialization + borrow counter (checked above).
        let r = f(unsafe { &mut *self.inner.get() });
        self.borrows.store(0, Ordering::Relaxed);
        r
    }
}

impl<T: Clone> SimCell<T> {
    /// Clone the current value out.
    pub fn get_clone(&self) -> T {
        self.with(|v| v.clone())
    }
}

impl<T: Copy> SimCell<T> {
    /// Copy the current value out.
    pub fn get(&self) -> T {
        self.with(|v| *v)
    }

    /// Replace the value.
    pub fn set(&self, value: T) {
        self.with_mut(|v| *v = value);
    }
}

impl<T: Default> Default for SimCell<T> {
    fn default() -> Self {
        SimCell::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for SimCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.with(|v| f.debug_tuple("SimCell").field(v).finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn basic_get_set() {
        let c = SimCell::new(41);
        assert_eq!(c.get(), 41);
        c.set(42);
        assert_eq!(c.get(), 42);
        assert_eq!(c.into_inner(), 42);
    }

    #[test]
    fn nested_shared_borrows_allowed() {
        let c = SimCell::new(vec![1, 2, 3]);
        c.with(|a| {
            c.with(|b| {
                assert_eq!(a.len(), b.len());
            });
        });
    }

    #[test]
    #[should_panic(expected = "exclusive borrow while already borrowed")]
    fn nested_mut_borrow_panics() {
        let c = SimCell::new(0);
        c.with(|_| {
            c.with_mut(|v| *v = 1);
        });
    }

    #[test]
    #[should_panic(expected = "shared borrow while exclusively borrowed")]
    fn shared_during_mut_panics() {
        let c = SimCell::new(0);
        c.with_mut(|_| {
            c.with(|_| {});
        });
    }

    #[test]
    fn usable_across_actors() {
        use crate::{time, Simulation};
        let cell = Arc::new(SimCell::new(0u64));
        let mut sim = Simulation::new();
        for id in 0..4u64 {
            let cell = Arc::clone(&cell);
            sim.spawn(format!("a{id}"), move |ctx| {
                ctx.advance(time::us(id));
                cell.with_mut(|v| *v += id + 1);
            });
        }
        sim.run();
        assert_eq!(cell.get(), 1 + 2 + 3 + 4);
    }
}
