//! `SimQueue` — an unbounded FIFO channel between actors, built from a
//! [`SimCell`] and a kernel condition variable.
//!
//! Used by the sub-thread pools (task dispatch) and the MPI substrate
//! (message matching). Transfer *costs* are not modeled here — callers charge
//! time explicitly through the platform layers.

use std::collections::VecDeque;

use crate::cell::SimCell;
use crate::engine::Ctx;
use crate::kernel::{CondId, Kernel};

/// An unbounded multi-producer multi-consumer FIFO queue for actors.
pub struct SimQueue<T> {
    items: SimCell<VecDeque<T>>,
    cond: CondId,
}

impl<T: Send> SimQueue<T> {
    /// Create a queue; needs kernel access once, at construction.
    pub fn new(kernel: &mut Kernel) -> Self {
        SimQueue {
            items: SimCell::new(VecDeque::new()),
            cond: kernel.new_cond(),
        }
    }

    /// Push an item and wake **one** blocked consumer, if any.
    ///
    /// Notify contract: one item, one wakeup. Each push wakes at most one
    /// parked consumer, which either takes this item or — if a never-parked
    /// consumer raced it to the pop — re-checks and parks again ([`SimQueue::pop`]
    /// always re-tests the queue on wake). Use this for ordinary work items,
    /// where waking everyone would only cause a thundering herd of failed
    /// pops.
    pub fn push(&self, ctx: &Ctx, item: T) {
        self.items.with_mut(|q| q.push_back(item));
        ctx.cond_notify_one(self.cond);
    }

    /// Push an item and wake **all** blocked consumers.
    ///
    /// Notify contract: broadcast. Only one consumer gets the item; the
    /// point is that every parked consumer re-runs its predicate, so use
    /// this for state-change items (shutdown sentinels, epoch bumps) that
    /// every consumer must observe even though only one dequeues the marker.
    pub fn push_broadcast(&self, ctx: &Ctx, item: T) {
        self.items.with_mut(|q| q.push_back(item));
        ctx.cond_notify_all(self.cond);
    }

    /// Pop, blocking in virtual time until an item is available.
    pub fn pop(&self, ctx: &Ctx) -> T {
        loop {
            if let Some(v) = self.try_pop() {
                return v;
            }
            ctx.cond_wait(self.cond);
        }
    }

    /// Non-blocking pop. Probes emptiness with a shared borrow first, so a
    /// woken consumer that lost the race (the common spurious-wake shape)
    /// never takes the exclusive borrow at all.
    pub fn try_pop(&self) -> Option<T> {
        if self.items.with(|q| q.is_empty()) {
            return None;
        }
        self.items.with_mut(|q| q.pop_front())
    }

    /// Current queue length.
    pub fn len(&self) -> usize {
        self.items.with(|q| q.len())
    }

    /// Whether the queue is empty (shared borrow; does not contend with
    /// other readers).
    pub fn is_empty(&self) -> bool {
        self.items.with(|q| q.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{time, Simulation};
    use std::sync::{Arc, Mutex};

    #[test]
    fn producer_consumer_in_virtual_time() {
        let mut sim = Simulation::new();
        let q = Arc::new(SimQueue::new(&mut sim.kernel()));
        let seen = Arc::new(Mutex::new(Vec::new()));

        let qp = Arc::clone(&q);
        sim.spawn("producer", move |ctx| {
            for i in 0..5 {
                ctx.advance(time::us(10));
                qp.push(ctx, i);
            }
        });
        let qc = Arc::clone(&q);
        let seen2 = Arc::clone(&seen);
        sim.spawn("consumer", move |ctx| {
            for _ in 0..5 {
                let v = qc.pop(ctx);
                seen2.lock().unwrap().push((v, ctx.now()));
            }
        });
        sim.run();
        let seen = seen.lock().unwrap();
        assert_eq!(seen.len(), 5);
        assert_eq!(seen[0], (0, time::us(10)));
        assert_eq!(seen[4], (4, time::us(50)));
    }

    #[test]
    fn try_pop_and_len() {
        let mut sim = Simulation::new();
        let q = Arc::new(SimQueue::new(&mut sim.kernel()));
        let q2 = Arc::clone(&q);
        sim.spawn("solo", move |ctx| {
            assert!(q2.try_pop().is_none());
            assert!(q2.is_empty());
            q2.push(ctx, 7);
            q2.push(ctx, 8);
            assert_eq!(q2.len(), 2);
            assert_eq!(q2.try_pop(), Some(7));
            assert_eq!(q2.try_pop(), Some(8));
        });
        sim.run();
    }

    #[test]
    fn multiple_consumers_each_get_one() {
        let mut sim = Simulation::new();
        let q = Arc::new(SimQueue::new(&mut sim.kernel()));
        let got = Arc::new(Mutex::new(Vec::new()));
        for i in 0..3 {
            let q = Arc::clone(&q);
            let got = Arc::clone(&got);
            sim.spawn(format!("cons{i}"), move |ctx| {
                let v: u32 = q.pop(ctx);
                got.lock().unwrap().push(v);
            });
        }
        let qp = Arc::clone(&q);
        sim.spawn("prod", move |ctx| {
            ctx.advance(time::us(1));
            for v in [10u32, 20, 30] {
                qp.push(ctx, v);
            }
        });
        sim.run();
        let mut got = got.lock().unwrap().clone();
        got.sort_unstable();
        assert_eq!(got, vec![10, 20, 30]);
    }
}
