//! One-token handoff between the scheduler thread and actor threads.
//!
//! The engine guarantees that at most one party (the scheduler or a single
//! actor) is logically running at a time. A `Handoff` is the parking spot a
//! party waits on until the other side passes it the token.
//!
//! The wait is **spin-then-park**: the token lives in an atomic, and a
//! waiter first spins on it for a short bounded burst — when the peer is
//! about to pass the token (the common case in a tight simcall exchange)
//! this resolves the handoff entirely in user space, with no futex sleep.
//! Only if the token does not arrive within the burst does the waiter take
//! the mutex and park on the condvar. Each `Handoff` has exactly one
//! consumer (the scheduler for the engine handoff, the owning actor for its
//! own), so consuming the token needs no CAS loop.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Condvar, Mutex, PoisonError};

/// Why a parked party was woken.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Wakeup {
    /// Proceed normally.
    Run,
    /// The simulation is being torn down; unwind out of user code.
    Shutdown,
}

const TOKEN: u32 = 1;
/// Sticky: once set, every subsequent wait returns [`Wakeup::Shutdown`].
const SHUTDOWN: u32 = 2;

/// Spin budget before parking. A handful of microseconds of polling — enough
/// to cover a peer that is already on its way to `signal`, short enough to
/// cost nothing measurable when the peer runs long.
const SPIN: u32 = 128;

/// A binary-semaphore-like rendezvous point.
#[derive(Debug, Default)]
pub(crate) struct Handoff {
    state: AtomicU32,
    park: Mutex<()>,
    cv: Condvar,
}

impl Handoff {
    pub fn new() -> Self {
        Self::default()
    }

    /// Consume the token if present. Single-consumer, so observing TOKEN
    /// means we own it; `fetch_and` only clears our own observation.
    fn try_take(&self) -> Option<Wakeup> {
        let s = self.state.load(Ordering::Acquire);
        if s & TOKEN == 0 {
            return None;
        }
        let prev = self.state.fetch_and(!TOKEN, Ordering::AcqRel);
        debug_assert_ne!(prev & TOKEN, 0, "handoff token consumed twice");
        Some(if prev & SHUTDOWN != 0 {
            Wakeup::Shutdown
        } else {
            Wakeup::Run
        })
    }

    /// Park until the token arrives. Returns the wakeup reason.
    pub fn wait(&self) -> Wakeup {
        for _ in 0..SPIN {
            if let Some(w) = self.try_take() {
                return w;
            }
            std::hint::spin_loop();
        }
        let mut g = self.park.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(w) = self.try_take() {
                return w;
            }
            g = self.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Pass the token, waking the parked party (or letting the next `wait`
    /// return immediately).
    pub fn signal(&self) {
        self.state.fetch_or(TOKEN, Ordering::Release);
        self.notify();
    }

    /// Pass the token flagged as shutdown; the woken party unwinds.
    pub fn signal_shutdown(&self) {
        self.state.fetch_or(TOKEN | SHUTDOWN, Ordering::Release);
        self.notify();
    }

    /// Wake a potentially parked waiter. Taking (and dropping) the park lock
    /// between the token store and the notify closes the race with a waiter
    /// that checked the token just before parking: it either sees the token
    /// under the lock, or is already in `cv.wait` and receives the notify.
    fn notify(&self) {
        drop(self.park.lock().unwrap_or_else(PoisonError::into_inner));
        self.cv.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn token_passes_between_threads() {
        let h = Arc::new(Handoff::new());
        let h2 = Arc::clone(&h);
        let t = std::thread::spawn(move || h2.wait());
        h.signal();
        assert_eq!(t.join().unwrap(), Wakeup::Run);
    }

    #[test]
    fn signal_before_wait_is_not_lost() {
        let h = Handoff::new();
        h.signal();
        assert_eq!(h.wait(), Wakeup::Run);
    }

    #[test]
    fn shutdown_reason_is_delivered() {
        let h = Handoff::new();
        h.signal_shutdown();
        assert_eq!(h.wait(), Wakeup::Shutdown);
    }

    #[test]
    fn shutdown_is_sticky_across_waits() {
        let h = Handoff::new();
        h.signal_shutdown();
        assert_eq!(h.wait(), Wakeup::Shutdown);
        h.signal();
        assert_eq!(h.wait(), Wakeup::Shutdown);
    }

    #[test]
    fn token_survives_a_parked_waiter_round_trip() {
        // Force the park path: the signal arrives well after the spin budget.
        let h = Arc::new(Handoff::new());
        let h2 = Arc::clone(&h);
        let t = std::thread::spawn(move || h2.wait());
        std::thread::sleep(std::time::Duration::from_millis(30));
        h.signal();
        assert_eq!(t.join().unwrap(), Wakeup::Run);
    }

    #[test]
    fn many_sequential_round_trips() {
        let h = Arc::new(Handoff::new());
        let done = Arc::new(Handoff::new());
        let h2 = Arc::clone(&h);
        let d2 = Arc::clone(&done);
        let t = std::thread::spawn(move || {
            for _ in 0..10_000 {
                assert_eq!(h2.wait(), Wakeup::Run);
                d2.signal();
            }
        });
        for _ in 0..10_000 {
            h.signal();
            assert_eq!(done.wait(), Wakeup::Run);
        }
        t.join().unwrap();
    }
}
