//! One-token handoff between the scheduler thread and actor threads.
//!
//! The engine guarantees that at most one party (the scheduler or a single
//! actor) is logically running at a time. A `Handoff` is the parking spot a
//! party waits on until the other side passes it the token.

use std::sync::{Condvar, Mutex};

/// Why a parked party was woken.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Wakeup {
    /// Proceed normally.
    Run,
    /// The simulation is being torn down; unwind out of user code.
    Shutdown,
}

#[derive(Debug, Default)]
struct State {
    token: bool,
    shutdown: bool,
}

/// A binary-semaphore-like rendezvous point.
#[derive(Debug, Default)]
pub(crate) struct Handoff {
    state: Mutex<State>,
    cv: Condvar,
}

impl Handoff {
    pub fn new() -> Self {
        Self::default()
    }

    /// Park until the token arrives. Returns the wakeup reason.
    pub fn wait(&self) -> Wakeup {
        let mut g = self.state.lock().expect("handoff mutex poisoned");
        while !g.token {
            g = self.cv.wait(g).expect("handoff mutex poisoned");
        }
        g.token = false;
        if g.shutdown {
            Wakeup::Shutdown
        } else {
            Wakeup::Run
        }
    }

    /// Pass the token, waking the parked party (or letting the next `wait`
    /// return immediately).
    pub fn signal(&self) {
        let mut g = self.state.lock().expect("handoff mutex poisoned");
        g.token = true;
        self.cv.notify_one();
    }

    /// Pass the token flagged as shutdown; the woken party unwinds.
    pub fn signal_shutdown(&self) {
        let mut g = self.state.lock().expect("handoff mutex poisoned");
        g.token = true;
        g.shutdown = true;
        self.cv.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn token_passes_between_threads() {
        let h = Arc::new(Handoff::new());
        let h2 = Arc::clone(&h);
        let t = std::thread::spawn(move || h2.wait());
        h.signal();
        assert_eq!(t.join().unwrap(), Wakeup::Run);
    }

    #[test]
    fn signal_before_wait_is_not_lost() {
        let h = Handoff::new();
        h.signal();
        assert_eq!(h.wait(), Wakeup::Run);
    }

    #[test]
    fn shutdown_reason_is_delivered() {
        let h = Handoff::new();
        h.signal_shutdown();
        assert_eq!(h.wait(), Wakeup::Shutdown);
    }
}
