//! One-token rendezvous used by the OS-thread actor backend.
//!
//! The engine guarantees that at most one party (the scheduler or a single
//! actor) is logically running at a time. On the [`crate::ActorBackend::OsThread`]
//! backend each actor lives on its own parked thread, and a `Handoff` is the
//! parking spot a party waits on until the other side passes it the token.
//! (The default coroutine backend needs none of this — a handoff there is a
//! user-space context switch.)
//!
//! On that thread backend — and only there; this is no longer the primary
//! handoff path of the engine — the wait is **spin-then-park**: the token
//! lives in an atomic, and a waiter first spins on it for a short bounded
//! burst — when the peer is about to pass the token (the common case in a
//! tight simcall exchange) this resolves the handoff entirely in user
//! space, with no futex sleep. Only if the token does not arrive within
//! the burst does the waiter take the mutex and park on the condvar. Each
//! `Handoff` has exactly one consumer, so consuming the token needs no CAS
//! loop. (The parallel backend's *worker* threads rendezvous differently:
//! they block on the shared kernel's condvar waiting for LBTS to advance —
//! see `engine::worker_loop`.)

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Condvar, Mutex, PoisonError};

const TOKEN: u32 = 1;

/// Spin budget before parking. A handful of microseconds of polling — enough
/// to cover a peer that is already on its way to `signal`, short enough to
/// cost nothing measurable when the peer runs long.
const SPIN: u32 = 128;

/// A binary-semaphore-like rendezvous point.
#[derive(Debug, Default)]
pub(crate) struct Handoff {
    state: AtomicU32,
    park: Mutex<()>,
    cv: Condvar,
}

impl Handoff {
    pub fn new() -> Self {
        Self::default()
    }

    /// Consume the token if present. Single-consumer, so observing TOKEN
    /// means we own it; `fetch_and` only clears our own observation.
    fn try_take(&self) -> bool {
        let s = self.state.load(Ordering::Acquire);
        if s & TOKEN == 0 {
            return false;
        }
        let prev = self.state.fetch_and(!TOKEN, Ordering::AcqRel);
        debug_assert_ne!(prev & TOKEN, 0, "handoff token consumed twice");
        true
    }

    /// Park until the token arrives.
    pub fn wait(&self) {
        for _ in 0..SPIN {
            if self.try_take() {
                return;
            }
            std::hint::spin_loop();
        }
        let mut g = self.park.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if self.try_take() {
                return;
            }
            g = self.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Pass the token, waking the parked party (or letting the next `wait`
    /// return immediately).
    pub fn signal(&self) {
        self.state.fetch_or(TOKEN, Ordering::Release);
        self.notify();
    }

    /// Wake a potentially parked waiter. Taking (and dropping) the park lock
    /// between the token store and the notify closes the race with a waiter
    /// that checked the token just before parking: it either sees the token
    /// under the lock, or is already in `cv.wait` and receives the notify.
    fn notify(&self) {
        drop(self.park.lock().unwrap_or_else(PoisonError::into_inner));
        self.cv.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn token_passes_between_threads() {
        let h = Arc::new(Handoff::new());
        let h2 = Arc::clone(&h);
        let t = std::thread::spawn(move || h2.wait());
        h.signal();
        t.join().unwrap();
    }

    #[test]
    fn signal_before_wait_is_not_lost() {
        let h = Handoff::new();
        h.signal();
        h.wait();
    }

    #[test]
    fn token_survives_a_parked_waiter_round_trip() {
        // Force the park path: the signal arrives well after the spin budget.
        let h = Arc::new(Handoff::new());
        let h2 = Arc::clone(&h);
        let t = std::thread::spawn(move || h2.wait());
        std::thread::sleep(std::time::Duration::from_millis(30));
        h.signal();
        t.join().unwrap();
    }

    #[test]
    fn many_sequential_round_trips() {
        let h = Arc::new(Handoff::new());
        let done = Arc::new(Handoff::new());
        let h2 = Arc::clone(&h);
        let d2 = Arc::clone(&done);
        let t = std::thread::spawn(move || {
            for _ in 0..10_000 {
                h2.wait();
                d2.signal();
            }
        });
        for _ in 0..10_000 {
            h.signal();
            done.wait();
        }
        t.join().unwrap();
    }
}
