//! Sub-thread runtime overhead profiles.
//!
//! The thesis evaluates three backing runtimes for hierarchical sub-threads
//! (§4.2, §4.3.3): OpenMP directives, Cilk++ `cilk_spawn`, and an in-house
//! pthread thread-pool prototype. Their relative costs — not their
//! programming models — are what differentiates the Fig 4.6 curves, so the
//! model captures each as a small set of constants.

use hupc_sim::{time, Time};

/// Which runtime backs a pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SubthreadModel {
    /// GCC OpenMP 2.5-style static fork-join (the best performer).
    OpenMp,
    /// Cilk++ work-stealing spawn (highest overhead: the thesis measures
    /// ~10% slower FFT kernels and a constant ~0.2 s lag).
    Cilk,
    /// The thesis' in-house pthread thread-pool prototype (in between).
    Pool,
}

/// Cost constants for one runtime.
#[derive(Clone, Copy, Debug)]
pub struct Profile {
    pub model: SubthreadModel,
    /// Master-side cost to open a parallel region / task batch.
    pub region_fork: Time,
    /// Master-side cost to close it (implicit barrier).
    pub region_join: Time,
    /// Worker-side cost per dispatched task/chunk.
    pub per_task: Time,
    /// Efficiency multiplier on compute charged through [`super::WorkerCtx`]
    /// (< 1 ⇒ slower kernels; captures Cilk++'s measured FFT slowdown).
    pub compute_efficiency: f64,
    /// One-time cost at pool creation (Cilk++'s constant lag).
    pub startup_lag: Time,
}

impl Profile {
    pub fn of(model: SubthreadModel) -> Profile {
        match model {
            SubthreadModel::OpenMp => Profile {
                model,
                region_fork: time::ns(1_200),
                region_join: time::ns(800),
                per_task: time::ns(300),
                compute_efficiency: 1.0,
                startup_lag: time::us(40),
            },
            SubthreadModel::Pool => Profile {
                model,
                region_fork: time::ns(2_500),
                region_join: time::ns(1_500),
                per_task: time::ns(800),
                compute_efficiency: 1.0,
                startup_lag: time::us(60),
            },
            SubthreadModel::Cilk => Profile {
                model,
                region_fork: time::ns(4_000),
                region_join: time::ns(2_000),
                per_task: time::ns(1_500),
                compute_efficiency: 0.90,
                startup_lag: time::ms(200),
            },
        }
    }

    /// Short display name matching the thesis figures.
    pub fn name(&self) -> &'static str {
        match self.model {
            SubthreadModel::OpenMp => "OpenMP",
            SubthreadModel::Cilk => "Cilk++",
            SubthreadModel::Pool => "Thread-Pool",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_ordering_matches_thesis() {
        let omp = Profile::of(SubthreadModel::OpenMp);
        let pool = Profile::of(SubthreadModel::Pool);
        let cilk = Profile::of(SubthreadModel::Cilk);
        assert!(omp.region_fork < pool.region_fork);
        assert!(pool.region_fork < cilk.region_fork);
        assert!(omp.per_task < pool.per_task);
        assert!(pool.per_task < cilk.per_task);
        // Cilk++: slower kernels and a startup lag of ~0.2 s
        assert!(cilk.compute_efficiency < 1.0);
        assert_eq!(cilk.startup_lag, time::ms(200));
        assert_eq!(omp.compute_efficiency, 1.0);
    }

    #[test]
    fn names() {
        assert_eq!(Profile::of(SubthreadModel::OpenMp).name(), "OpenMP");
        assert_eq!(Profile::of(SubthreadModel::Cilk).name(), "Cilk++");
        assert_eq!(Profile::of(SubthreadModel::Pool).name(), "Thread-Pool");
    }
}
