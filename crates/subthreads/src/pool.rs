//! The sub-thread pool: persistent worker actors under one UPC thread.

use std::sync::Arc;

use hupc_gasnet::Gasnet;
use hupc_sim::{time, ActorRef, CondId, Ctx, SimCell, SimQueue, Time};
use hupc_topo::{PuId, SocketId};
use hupc_upc::{set_subthread_context, Upc};

use crate::profile::{Profile, SubthreadModel};

type Task = Box<dyn FnOnce(&WorkerCtx<'_>) + Send>;

enum Msg {
    Task(Task),
    Stop,
}

/// What a task sees: its simulation context, its PU, and charge helpers.
pub struct WorkerCtx<'a> {
    ctx: &'a Ctx,
    gasnet: Arc<Gasnet>,
    pu: PuId,
    index: usize,
    efficiency: f64,
}

impl<'a> WorkerCtx<'a> {
    /// Simulation context of this sub-thread (pass to
    /// [`hupc_upc::UpcRuntime::view`] for PGAS access).
    pub fn ctx(&self) -> &'a Ctx {
        self.ctx
    }

    /// PU this sub-thread is pinned to.
    pub fn pu(&self) -> PuId {
        self.pu
    }

    /// Sub-thread index within the pool (0 = the master running inline).
    pub fn index(&self) -> usize {
        self.index
    }

    /// Charge `work` of single-thread CPU time on this sub-thread's core,
    /// scaled by the runtime's compute efficiency.
    pub fn compute(&self, work: Time) {
        let scaled = time::from_secs_f64(time::as_secs_f64(work) / self.efficiency);
        self.gasnet.compute_on(self.ctx, self.pu, scaled);
    }

    /// Charge `flops` at `efficiency_of_peak`, additionally scaled by the
    /// runtime's compute efficiency.
    pub fn compute_flops(&self, flops: f64, efficiency_of_peak: f64) {
        self.gasnet.compute_flops_on(
            self.ctx,
            self.pu,
            flops,
            (efficiency_of_peak * self.efficiency).min(1.0),
        );
    }

    /// Charge streaming memory traffic against `home`.
    pub fn mem_stream(&self, home: SocketId, bytes: usize) {
        self.gasnet.mem_stream_on(self.ctx, self.pu, home, bytes);
    }
}

struct PoolShared {
    gasnet: Arc<Gasnet>,
    queue: SimQueue<Msg>,
    pending: SimCell<usize>,
    done: CondId,
    efficiency: f64,
}

/// A pool of sub-threads under one UPC thread (thesis §4.2.2's thread-pool
/// pattern; the OpenMP and Cilk++ hybrids run on the same machinery with
/// different [`Profile`]s).
///
/// Must be explicitly [`SubPool::shutdown`] before the owning thread
/// finishes, or the simulation reports the workers as deadlocked.
pub struct SubPool {
    shared: Arc<PoolShared>,
    profile: Profile,
    pus: Vec<PuId>,
    workers: Vec<ActorRef>,
    owner: usize,
    shut: bool,
}

impl SubPool {
    /// Spawn `n_sub` sub-threads (including the master as sub-thread 0)
    /// under UPC thread `upc.mythread()`, pinned per the thread's affinity
    /// mask. Charges the runtime's startup lag.
    pub fn spawn(upc: &Upc<'_>, n_sub: usize, model: SubthreadModel) -> SubPool {
        assert!(n_sub >= 1);
        let profile = Profile::of(model);
        let gasnet = Arc::clone(upc.gasnet());
        let me = upc.mythread();
        let ctx = upc.ctx();
        let pus = gasnet
            .placement()
            .subthread_pus(gasnet.machine(), me, n_sub);
        for &pu in &pus[1..] {
            gasnet.occupy_pu(pu);
        }
        let (queue, done) = ctx.with_kernel(|k| (SimQueue::new(k), k.new_cond()));
        let shared = Arc::new(PoolShared {
            gasnet: Arc::clone(&gasnet),
            queue,
            pending: SimCell::new(0),
            done,
            efficiency: profile.compute_efficiency,
        });
        ctx.advance(profile.startup_lag);
        let workers: Vec<ActorRef> = pus[1..]
            .iter()
            .enumerate()
            .map(|(i, &pu)| {
                let shared = Arc::clone(&shared);
                let per_task = profile.per_task;
                ctx.spawn(format!("sub{me}.{}", i + 1), move |wctx| {
                    set_subthread_context(wctx, true);
                    loop {
                        match shared.queue.pop(wctx) {
                            Msg::Stop => break,
                            Msg::Task(t) => {
                                wctx.advance(per_task);
                                let w = WorkerCtx {
                                    ctx: wctx,
                                    gasnet: Arc::clone(&shared.gasnet),
                                    pu,
                                    index: i + 1,
                                    efficiency: shared.efficiency,
                                };
                                t(&w);
                                let left = shared.pending.with_mut(|p| {
                                    *p -= 1;
                                    *p
                                });
                                if left == 0 {
                                    wctx.cond_notify_all(shared.done);
                                }
                            }
                        }
                    }
                })
            })
            .collect();
        SubPool {
            shared,
            profile,
            pus,
            workers,
            owner: me,
            shut: false,
        }
    }

    /// Sub-threads in the pool (master included).
    pub fn size(&self) -> usize {
        self.pus.len()
    }

    /// The runtime profile backing this pool.
    pub fn profile(&self) -> &Profile {
        &self.profile
    }

    /// UPC thread owning the pool.
    pub fn owner(&self) -> usize {
        self.owner
    }

    fn master_worker<'b>(&self, ctx: &'b Ctx) -> WorkerCtx<'b> {
        WorkerCtx {
            ctx,
            gasnet: Arc::clone(&self.shared.gasnet),
            pu: self.pus[0],
            index: 0,
            efficiency: self.shared.efficiency,
        }
    }

    /// OpenMP-style `parallel for` with static scheduling: `items` indices
    /// split into `size()` contiguous chunks, chunk 0 run inline by the
    /// master, the rest dispatched to workers. Blocks (in virtual time)
    /// until every chunk finishes — the region's implicit barrier.
    pub fn parallel_for<F>(&self, ctx: &Ctx, items: usize, f: F)
    where
        F: Fn(&WorkerCtx<'_>, std::ops::Range<usize>) + Send + Sync + 'static,
    {
        let nw = self.pus.len();
        let f = Arc::new(f);
        ctx.advance(self.profile.region_fork);
        let per = items.div_ceil(nw);
        let chunk = |i: usize| (i * per).min(items)..((i + 1) * per).min(items);
        // Dispatch chunks 1.. to workers first so they start concurrently.
        let dispatched = nw.saturating_sub(1);
        if dispatched > 0 {
            self.shared.pending.with_mut(|p| *p += dispatched);
            for i in 1..nw {
                let f = Arc::clone(&f);
                let r = chunk(i);
                self.shared
                    .queue
                    .push(ctx, Msg::Task(Box::new(move |w| f(w, r))));
            }
        }
        // Master's own chunk, inline.
        ctx.advance(self.profile.per_task);
        let w = self.master_worker(ctx);
        f(&w, chunk(0));
        // Implicit barrier.
        while self.shared.pending.get() > 0 {
            ctx.cond_wait(self.shared.done);
        }
        ctx.advance(self.profile.region_join);
    }

    /// Cilk-style dynamic spawn: enqueue one task for any idle worker.
    /// Pair with [`SubPool::sync`].
    pub fn spawn_task<F>(&self, ctx: &Ctx, f: F)
    where
        F: FnOnce(&WorkerCtx<'_>) + Send + 'static,
    {
        ctx.advance(self.profile.per_task); // spawn cost on the spawner
        self.shared.pending.with_mut(|p| *p += 1);
        self.shared.queue.push(ctx, Msg::Task(Box::new(f)));
    }

    /// `cilk_sync`: wait until all spawned tasks have finished.
    pub fn sync(&self, ctx: &Ctx) {
        while self.shared.pending.get() > 0 {
            ctx.cond_wait(self.shared.done);
        }
        ctx.advance(self.profile.region_join);
    }

    /// Stop and join all workers, releasing their PUs. Mandatory before the
    /// owning UPC thread returns.
    pub fn shutdown(mut self, ctx: &Ctx) {
        assert_eq!(
            self.shared.pending.get(),
            0,
            "shutdown with tasks in flight; call sync() first"
        );
        for _ in 0..self.workers.len() {
            self.shared.queue.push_broadcast(ctx, Msg::Stop);
        }
        for w in self.workers.drain(..) {
            ctx.join(w);
        }
        for &pu in &self.pus[1..] {
            self.shared.gasnet.release_pu(pu);
        }
        self.shut = true;
    }
}

impl std::fmt::Debug for SubPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SubPool")
            .field("owner", &self.owner)
            .field("size", &self.pus.len())
            .field("model", &self.profile.model)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hupc_sim::SimCell;
    use hupc_upc::{ThreadSafety, UpcConfig, UpcJob};

    fn one_thread_job() -> UpcJob {
        UpcJob::new(UpcConfig::test_default(1, 1))
    }

    #[test]
    fn parallel_for_covers_all_indices() {
        let hits = Arc::new(SimCell::new(vec![0u32; 103]));
        let h2 = Arc::clone(&hits);
        let job = one_thread_job();
        job.run(move |upc| {
            let pool = SubPool::spawn(&upc, 4, SubthreadModel::OpenMp);
            let h3 = Arc::clone(&h2);
            pool.parallel_for(upc.ctx(), 103, move |_w, range| {
                h3.with_mut(|v| {
                    for i in range {
                        v[i] += 1;
                    }
                });
            });
            pool.shutdown(upc.ctx());
        });
        assert!(hits.with(|v| v.iter().all(|&c| c == 1)));
    }

    #[test]
    fn work_actually_runs_in_parallel_virtual_time() {
        // Unbound ⇒ the pool may use the whole node's 4 cores.
        let mut cfg = UpcConfig::test_default(1, 1);
        cfg.gasnet.bind = hupc_topo::BindPolicy::Unbound;
        let job = UpcJob::new(cfg);
        job.run(move |upc| {
            let pool = SubPool::spawn(&upc, 4, SubthreadModel::OpenMp);
            let t0 = upc.now();
            // 4 chunks × 1ms of compute on 4 distinct cores ⇒ ~1ms, not 4ms.
            pool.parallel_for(upc.ctx(), 4, |w, range| {
                for _ in range {
                    w.compute(time::ms(1));
                }
            });
            let dt = upc.now() - t0;
            assert!(dt < time::ms(2), "parallel region took {}", time::format(dt));
            assert!(dt >= time::ms(1));
            pool.shutdown(upc.ctx());
        });
    }

    #[test]
    fn dynamic_spawn_and_sync() {
        let count = Arc::new(SimCell::new(0u64));
        let c2 = Arc::clone(&count);
        let job = one_thread_job();
        job.run(move |upc| {
            let pool = SubPool::spawn(&upc, 3, SubthreadModel::Cilk);
            for i in 0..10u64 {
                let c = Arc::clone(&c2);
                pool.spawn_task(upc.ctx(), move |w| {
                    w.compute(time::us(i + 1));
                    c.with_mut(|v| *v += i);
                });
            }
            pool.sync(upc.ctx());
            assert_eq!(c2.get(), 45);
            pool.shutdown(upc.ctx());
        });
    }

    #[test]
    fn cilk_pays_startup_lag() {
        let job = one_thread_job();
        job.run(move |upc| {
            let t0 = upc.now();
            let pool = SubPool::spawn(&upc, 2, SubthreadModel::Cilk);
            assert!(upc.now() - t0 >= time::ms(200));
            pool.shutdown(upc.ctx());
        });
    }

    #[test]
    fn cilk_compute_is_slower() {
        fn region_time(model: SubthreadModel) -> Time {
            let out = Arc::new(SimCell::new(0u64));
            let o2 = Arc::clone(&out);
            let job = one_thread_job();
            job.run(move |upc| {
                let pool = SubPool::spawn(&upc, 2, model);
                let t0 = upc.now();
                pool.parallel_for(upc.ctx(), 2, |w, range| {
                    for _ in range {
                        w.compute(time::ms(10));
                    }
                });
                o2.with_mut(|v| *v = upc.now() - t0);
                pool.shutdown(upc.ctx());
            });
            out.get()
        }
        let omp = region_time(SubthreadModel::OpenMp);
        let cilk = region_time(SubthreadModel::Cilk);
        assert!(
            cilk as f64 > omp as f64 * 1.08,
            "cilk {cilk} vs omp {omp}"
        );
    }

    #[test]
    fn subthreads_can_reach_the_pgas_under_thread_multiple() {
        let mut cfg = UpcConfig::test_default(2, 1);
        cfg.safety = ThreadSafety::Multiple;
        let job = UpcJob::new(cfg);
        let rt = Arc::clone(job.runtime());
        let off = rt.alloc_words(4);
        let rt2 = Arc::clone(&rt);
        job.run(move |upc| {
            let me = upc.mythread();
            if me == 0 {
                let pool = SubPool::spawn(&upc, 2, SubthreadModel::Pool);
                let rt3 = Arc::clone(&rt2);
                pool.parallel_for(upc.ctx(), 2, move |w, range| {
                    // sub-thread puts into thread 1's partition directly
                    let view = rt3.view(w.ctx(), 0);
                    for i in range {
                        view.memput(1, off + i, &[900 + i as u64]);
                    }
                });
                pool.shutdown(upc.ctx());
            }
            upc.barrier();
            if me == 1 {
                assert_eq!(upc.gasnet().segment(1).read_word(off), 900);
                assert_eq!(upc.gasnet().segment(1).read_word(off + 1), 901);
            }
        });
    }

    #[test]
    #[should_panic(expected = "THREAD_FUNNELED")]
    fn funneled_crashes_subthread_pgas_access() {
        let mut cfg = UpcConfig::test_default(1, 1);
        cfg.safety = ThreadSafety::Funneled;
        let job = UpcJob::new(cfg);
        let rt = Arc::clone(job.runtime());
        let off = rt.alloc_words(1);
        let rt2 = Arc::clone(&rt);
        job.run(move |upc| {
            let pool = SubPool::spawn(&upc, 2, SubthreadModel::OpenMp);
            let rt3 = Arc::clone(&rt2);
            pool.parallel_for(upc.ctx(), 2, move |w, range| {
                if w.index() == 1 {
                    let view = rt3.view(w.ctx(), 0);
                    for i in range {
                        view.memput(0, off, &[i as u64]);
                    }
                }
            });
            pool.shutdown(upc.ctx());
        });
    }

    #[test]
    fn smt_occupancy_slows_oversubscribed_cores() {
        // testbox has no SMT; use a 1-thread Lehman-style config instead.
        use hupc_gasnet::{Backend, GasnetConfig};
        use hupc_topo::{BindPolicy, MachineSpec};
        let cfg = UpcConfig {
            gasnet: GasnetConfig {
                machine: MachineSpec::lehman().with_nodes(1),
                n_threads: 1,
                nodes_used: 1,
                bind: BindPolicy::RoundRobinSockets,
                backend: Backend::processes_pshm(),
                conduit: hupc_net::Conduit::ib_qdr(),
                segment_words: 1 << 12,
                overheads: None,
                fault: None,
                retry: Default::default(),
                barrier_timeout: None,
            },
            safety: ThreadSafety::Multiple,
        };
        let job = UpcJob::new(cfg);
        job.run(move |upc| {
            // 8 sub-threads on a 4-core SMT-2 socket: cores oversubscribed.
            let pool = SubPool::spawn(&upc, 8, SubthreadModel::OpenMp);
            let t0 = upc.now();
            pool.parallel_for(upc.ctx(), 8, |w, range| {
                for _ in range {
                    w.compute(time::ms(10));
                }
            });
            let dt8 = upc.now() - t0;
            pool.shutdown(upc.ctx());
            // 8 threads × 10ms over 4 SMT-2 cores at 1.15 aggregate
            // ⇒ ≈ 10ms × 2/1.15 ≈ 17.4ms, clearly more than 10ms.
            assert!(dt8 > time::ms(16), "dt8 = {}", time::format(dt8));
            assert!(dt8 < time::ms(20), "dt8 = {}", time::format(dt8));
        });
    }
}
