//! `hupc-subthreads` — the thesis' second approach to hierarchical
//! parallelism (Chapter 4): **nested shared-memory sub-threads** under each
//! SPMD UPC thread.
//!
//! A UPC thread spawns a [`SubPool`] of persistent worker actors pinned to
//! the PUs of its affinity mask (its socket under the thesis' `numactl`
//! binding, the whole node when unbound). The pool exposes
//!
//! * [`SubPool::parallel_for`] — OpenMP-style static fork-join over an index
//!   range;
//! * [`SubPool::spawn_task`] / [`SubPool::sync`] — Cilk-style dynamic task
//!   spawning with a shared queue;
//!
//! under three runtime [`Profile`]s reproducing the overhead ordering the
//! thesis measures in Fig 4.6: **OpenMP** (cheapest fork-join) < **thread
//! pool** (the thesis' in-house prototype) < **Cilk++** (highest per-spawn
//! overhead, ~10% slower compute kernels, plus a fixed startup lag).
//!
//! Sub-threads can reach the PGAS through [`hupc_upc::UpcRuntime::view`];
//! every such call is gated by the job's [`hupc_upc::ThreadSafety`] level —
//! including the crash-on-`Funneled` behaviour the thesis reports for
//! user-spawned pthreads (Berkeley UPC bug 2808).

mod pool;
mod profile;

pub use pool::{SubPool, WorkerCtx};
pub use profile::{Profile, SubthreadModel};
