//! Property tests: the hierarchical collectives must agree with the flat
//! reference algorithms bit-for-bit — across random machine shapes (1–4
//! sockets × 1–16 cores), node counts, payload sizes, roots, and forced
//! algorithm levels, including under fault-plan loss windows (retried
//! transfers must not corrupt payloads).

use std::sync::Arc;

use hupc_coll::{CollAlgo, CollDomain, CollPlan};
use hupc_gasnet::FaultPlan;
use hupc_topo::MachineSpec;
use hupc_upc::{UpcConfig, UpcJob};
use proptest::prelude::*;

/// A random machine + thread count that satisfies placement's constraints
/// (threads divide evenly over nodes, and fit the per-node PUs).
#[derive(Clone, Debug)]
struct Shape {
    machine: MachineSpec,
    nodes: usize,
    threads: usize,
}

struct Shapes;

impl Strategy for Shapes {
    type Value = Shape;
    fn generate(&self, rng: &mut proptest::TestRng) -> Shape {
        let sockets = 1 + rng.below(4) as usize;
        let cores = 1 + rng.below(16) as usize;
        let nodes = 1 + rng.below(3) as usize;
        let per_node = sockets * cores;
        let tpn = 1 + rng.below(per_node.min(8) as u64) as usize;
        let mut machine = MachineSpec::small_test(nodes);
        machine.sockets_per_node = sockets;
        machine.cores_per_socket = cores;
        Shape {
            machine,
            nodes,
            threads: tpn * nodes,
        }
    }
}

fn shapes() -> Shapes {
    Shapes
}

fn job_for(shape: &Shape, fault: Option<FaultPlan>) -> UpcJob {
    let mut cfg = UpcConfig::test_default(shape.threads, shape.nodes);
    cfg.gasnet.machine = shape.machine.clone();
    cfg.gasnet.fault = fault;
    UpcJob::new(cfg)
}

/// Run `body` once with no provider (flat reference) and once per forced
/// hierarchical plan, returning each run's per-thread result vectors.
fn run_ways<F>(shape: &Shape, fault: Option<FaultPlan>, body: F) -> Vec<Vec<Vec<u64>>>
where
    F: Fn(&hupc_upc::Upc<'_>) -> Vec<u64> + Send + Sync + Clone + 'static,
{
    let plans = [
        None,
        Some(CollPlan::Force(CollAlgo::TwoLevel)),
        Some(CollPlan::Force(CollAlgo::ThreeLevel)),
    ];
    plans
        .iter()
        .map(|plan| {
            let job = job_for(shape, fault.clone());
            if let Some(p) = plan {
                CollDomain::for_job(&job, *p).install(&job);
            }
            let body = body.clone();
            let out: Arc<std::sync::Mutex<Vec<Vec<u64>>>> = Arc::new(std::sync::Mutex::new(vec![
                Vec::new();
                shape.threads
            ]));
            let sink = Arc::clone(&out);
            job.run(move |upc| {
                let r = body(&upc);
                sink.lock().unwrap()[upc.mythread()] = r;
            });
            Arc::try_unwrap(out).unwrap().into_inner().unwrap()
        })
        .collect()
}

fn assert_all_ways_equal(ways: &[Vec<Vec<u64>>], what: &str, shape: &Shape) {
    let flat = &ways[0];
    for (i, hier) in ways.iter().enumerate().skip(1) {
        assert_eq!(
            hier, flat,
            "{what}: way {i} diverged from flat reference on {shape:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn broadcast_matches_flat(shape in shapes(), len in 0usize..300, root_pick in 0usize..64) {
        let root = root_pick % shape.threads;
        let ways = run_ways(&shape, None, move |upc| {
            let mut w: Vec<u64> = if upc.mythread() == root {
                (0..len as u64).map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15)).collect()
            } else {
                vec![0; len]
            };
            upc.broadcast_words(root, &mut w);
            w
        });
        assert_all_ways_equal(&ways, "broadcast", &shape);
    }

    #[test]
    fn allreduce_matches_flat(shape in shapes(), len in 1usize..200) {
        let ways = run_ways(&shape, None, move |upc| {
            let me = upc.mythread() as u64;
            let mut v: Vec<u64> = (0..len as u64).map(|i| (me + 1).wrapping_mul(i + 17)).collect();
            upc.allreduce_word_vec(&mut v, &|a, b| a.wrapping_add(b));
            let mx = upc.allreduce_max_u64(me.wrapping_mul(31));
            let sum = upc.allreduce_sum_u64(me + 5);
            v.push(mx);
            v.push(sum);
            v
        });
        assert_all_ways_equal(&ways, "allreduce", &shape);
    }

    #[test]
    fn allgather_matches_flat(shape in shapes(), b in 0usize..90) {
        let p = shape.threads;
        let ways = run_ways(&shape, None, move |upc| {
            let me = upc.mythread() as u64;
            let mine: Vec<u64> = (0..b as u64).map(|i| me * 1000 + i).collect();
            let mut out = vec![0u64; p * b];
            upc.allgather_words(&mine, &mut out);
            out
        });
        assert_all_ways_equal(&ways, "allgather", &shape);
    }

    #[test]
    fn all_exchange_matches_flat(shape in shapes(), bw in 1usize..5) {
        let p = shape.threads;
        let ways: Vec<Vec<Vec<u64>>> = [None, Some(())]
            .iter()
            .map(|hier| {
                let job = job_for(&shape, None);
                let src = job.alloc_shared::<u64>(p * p * bw, p * bw);
                let dst = job.alloc_shared::<u64>(p * p * bw, p * bw);
                if hier.is_some() {
                    CollDomain::for_job(&job, CollPlan::Force(CollAlgo::TwoLevel))
                        .reserve_exchange(&job, bw)
                        .install(&job);
                }
                let out = Arc::new(std::sync::Mutex::new(vec![Vec::new(); p]));
                let sink = Arc::clone(&out);
                job.run(move |upc| {
                    let me = upc.mythread() as u64;
                    src.with_local_words(&upc, |w| {
                        for (i, x) in w.iter_mut().enumerate() {
                            *x = me.wrapping_mul(7919).wrapping_add(i as u64);
                        }
                    });
                    upc.barrier();
                    upc.all_exchange(src, dst, bw, false);
                    let r = dst.with_local_words(&upc, |w| w.to_vec());
                    sink.lock().unwrap()[upc.mythread()] = r;
                });
                Arc::try_unwrap(out).unwrap().into_inner().unwrap()
            })
            .collect();
        assert_eq!(ways[1], ways[0], "coalesced exchange diverged on {shape:?}");
    }

    #[test]
    fn collectives_survive_loss_windows(shape in shapes(), seed in 0u64..1000) {
        // Lossy links: transfers retry under the fault plan; payload data
        // must still come out identical to the fault-free flat reference.
        let fault = FaultPlan::new(seed).loss(0.2);
        let reference = run_ways(&shape, None, |upc| {
            let me = upc.mythread() as u64;
            let mut w = if upc.mythread() == 0 { vec![99, 98, 97] } else { vec![0; 3] };
            upc.broadcast_words(0, &mut w);
            w.push(upc.allreduce_sum_u64(me * me + 1));
            w
        });
        let lossy = run_ways(&shape, Some(fault), |upc| {
            let me = upc.mythread() as u64;
            let mut w = if upc.mythread() == 0 { vec![99, 98, 97] } else { vec![0; 3] };
            upc.broadcast_words(0, &mut w);
            w.push(upc.allreduce_sum_u64(me * me + 1));
            w
        });
        // every way (flat and hierarchical), lossy or not, same data
        for (i, way) in lossy.iter().enumerate() {
            assert_eq!(way, &reference[0], "lossy way {i} corrupted data on {shape:?}");
        }
    }
}
