//! The collective domain: topology partitions + hierarchical algorithms.
//!
//! A [`CollDomain`] is built once per job (the §3.3 "setup phase"): it
//! partitions the threads into node groups and socket groups, elects
//! leaders (lowest member), and pre-builds the inter-leader team. Installed
//! as the job's [`CollProvider`], it decomposes every collective into
//!
//! * an **intra-group phase** over shared memory — member puts/gets against
//!   the group leader ride the castable (`pshm`/local) access paths, so no
//!   network traffic is charged — and
//! * an **inter-leader phase** over the network — k-ary trees for
//!   broadcast/reduce, a store-and-forward ring for allgather, and
//!   per-destination-node message coalescing for all-to-all.
//!
//! Payloads are pipelined through the segment scratch region, so
//! `SCRATCH_WORDS` bounds the chunk size, never the payload.

use std::sync::Arc;

use hupc_groups::{GroupLevel, GroupSet, ThreadGroup};
use hupc_sim::Kernel;
use hupc_upc::{CollProvider, SharedArray, Upc, UpcJob, UpcRuntime, SCRATCH_WORDS};

use crate::plan::{resolve, CollAlgo, CollOp, CollPlan};

/// Half the scratch region: the DATA pipeline chunk. The other half is the
/// GATHER area for reduction slots.
const HALF: usize = SCRATCH_WORDS / 2;

/// Emit a structured trace event (compiles out without the `trace` feature).
macro_rules! emit {
    ($upc:expr, $kind:ident, $a:expr, $b:expr) => {
        #[cfg(feature = "trace")]
        {
            $upc.ctx()
                .trace_emit(hupc_trace::EventKind::$kind, $a, $b);
        }
    };
}

/// Pre-allocated staging for the coalesced all-to-all (see
/// [`CollDomain::reserve_exchange`]).
struct ExchangeStaging {
    arr: SharedArray<u64>,
    max_block_words: usize,
}

/// Topology-aware collective provider.
pub struct CollDomain {
    nodes: GroupSet,
    sockets: GroupSet,
    /// One team over all node leaders; leader rank == node-group index.
    leaders: ThreadGroup,
    /// Per node group: the socket-leader threads inside it, ascending.
    socket_leaders_by_node: Vec<Vec<usize>>,
    /// Threads per node (placement guarantees an even split).
    node_size: usize,
    plan: CollPlan,
    /// Fan-out of the inter-leader trees.
    arity: usize,
    staging: Option<ExchangeStaging>,
}

impl CollDomain {
    /// Partition the job's threads and pre-build the leader team.
    /// `plan` may be overridden by the `HUPC_COLL_PLAN` environment
    /// variable (ablation knob).
    pub fn build(kernel: &mut Kernel, rt: &Arc<UpcRuntime>, plan: CollPlan) -> CollDomain {
        let nodes = GroupSet::partition(kernel, rt, GroupLevel::Node);
        let sockets = GroupSet::partition(kernel, rt, GroupLevel::Socket);
        let leader_threads: Vec<usize> = nodes.groups().iter().map(|g| g.leader()).collect();
        debug_assert!(leader_threads.windows(2).all(|w| w[0] < w[1]));
        let leaders = ThreadGroup::new(kernel, rt, leader_threads);
        let socket_leaders_by_node: Vec<Vec<usize>> = nodes
            .groups()
            .iter()
            .map(|g| {
                let mut ls: Vec<usize> = g
                    .members()
                    .iter()
                    .map(|&m| sockets.group_of(m).leader())
                    .collect();
                ls.dedup(); // members ascending → socket leaders ascending
                ls
            })
            .collect();
        let node_size = nodes.groups()[0].size();
        debug_assert!(nodes.groups().iter().all(|g| g.size() == node_size));
        CollDomain {
            nodes,
            sockets,
            leaders,
            socket_leaders_by_node,
            node_size,
            plan: plan.from_env(),
            arity: 8,
            staging: None,
        }
    }

    /// Convenience: build against a job before `run`.
    pub fn for_job(job: &UpcJob, plan: CollPlan) -> CollDomain {
        let mut kernel = job.kernel();
        Self::build(&mut kernel, job.runtime(), plan)
    }

    /// Override the inter-leader tree fan-out (default 8, min 2).
    pub fn with_arity(mut self, k: usize) -> Self {
        assert!(k >= 2, "tree arity must be at least 2");
        self.arity = k;
        self
    }

    /// Pre-allocate leader staging for the coalesced hierarchical
    /// all-to-all: without it (or for blocks larger than
    /// `max_block_words`), `all_exchange` falls back to the flat pairwise
    /// algorithm. Costs `THREADS² × node_size × max_block_words` words of
    /// segment space across the job — reserve only what the app exchanges.
    pub fn reserve_exchange(mut self, job: &UpcJob, max_block_words: usize) -> Self {
        assert!(max_block_words > 0);
        let p = job.gasnet().n_threads();
        let per_thread = p * self.node_size * max_block_words;
        let arr = job.alloc_shared::<u64>(p * per_thread, per_thread);
        self.staging = Some(ExchangeStaging {
            arr,
            max_block_words,
        });
        self
    }

    /// Install as the job's collective provider (all `Upc` collectives then
    /// delegate here).
    pub fn install(self, job: &UpcJob) {
        job.runtime().set_coll_provider(Arc::new(self));
    }

    /// Build with [`CollPlan::Auto`] and install, in one step.
    pub fn install_auto(job: &UpcJob) {
        Self::for_job(job, CollPlan::Auto).install(job);
    }

    /// Node groups in the job.
    pub fn node_groups(&self) -> usize {
        self.nodes.len()
    }

    /// Socket groups in the job.
    pub fn socket_groups(&self) -> usize {
        self.sockets.len()
    }

    /// The algorithm a given op/payload resolves to under this domain's
    /// plan.
    pub fn algo_for(&self, op: CollOp, payload_words: usize) -> CollAlgo {
        resolve(
            self.plan,
            op,
            payload_words,
            self.nodes.len(),
            self.sockets.len(),
        )
    }

    fn leader_thread(&self, group: usize) -> usize {
        self.nodes.groups()[group].leader()
    }

    fn node_barrier(&self, upc: &Upc<'_>) {
        self.nodes.group_of(upc.mythread()).barrier(upc);
    }

    /// Socket-slot index of `me`'s socket inside its node (three-level
    /// gather slot).
    fn socket_index_in_node(&self, me: usize) -> usize {
        let g = self.nodes.group_index_of(me);
        let sl = self.sockets.group_of(me).leader();
        self.socket_leaders_by_node[g]
            .iter()
            .position(|&l| l == sl)
            .expect("socket leader not found in node")
    }

    // ------------------------------------------------------------------
    // broadcast
    // ------------------------------------------------------------------

    fn broadcast_hier(&self, upc: &Upc<'_>, root: usize, words: &mut [u64], algo: CollAlgo) {
        let me = upc.mythread();
        let (data, _) = upc.runtime().coll_scratch();
        let grp = self.nodes.len();
        let root_g = self.nodes.group_index_of(root);
        let node_leader = self.nodes.group_of(me).leader();
        let lrank = self.leaders.rank_of(me);
        let three = algo == CollAlgo::ThreeLevel;
        #[cfg(feature = "trace")]
        let tag = |phase| hupc_trace::coll::phase_tag(hupc_trace::coll::BROADCAST, algo.trace_tag(), phase);
        emit!(upc, CollBegin, tag(hupc_trace::coll::PHASE_OP), words.len() as u64);
        let mut buf = vec![0u64; words.len().min(HALF)];
        for chunk in words.chunks_mut(HALF) {
            // Stage: the root plants the chunk in its node leader's DATA.
            emit!(upc, CollBegin, tag(hupc_trace::coll::PHASE_INTRA), chunk.len() as u64);
            if me == root {
                if me == node_leader {
                    upc.gasnet().segment(me).write(data, chunk);
                } else {
                    upc.memput(node_leader, data, chunk); // pshm
                }
            }
            emit!(upc, CollEnd, tag(hupc_trace::coll::PHASE_INTRA), 0);
            self.node_barrier(upc);
            // Inter-leader k-ary tree, rotated so the root's leader is
            // tree rank 0.
            if let Some(lr) = lrank {
                emit!(upc, CollBegin, tag(hupc_trace::coll::PHASE_INTER), chunk.len() as u64);
                let rel = (lr + grp - root_g) % grp;
                let b = &mut buf[..chunk.len()];
                let mut staged = false;
                let mut span = 1;
                while span < grp {
                    self.leaders.barrier(upc);
                    if rel < span {
                        if !staged {
                            upc.gasnet().segment(me).read(data, b);
                            staged = true;
                        }
                        let mut hs = Vec::new();
                        for j in 1..self.arity {
                            let t = rel + j * span;
                            if t < grp {
                                let dst = self.leader_thread((root_g + t) % grp);
                                hs.push(upc.memput_nb(dst, data, b));
                            }
                        }
                        for h in hs {
                            upc.wait_sync(h);
                        }
                    }
                    span *= self.arity;
                }
                self.leaders.barrier(upc);
                emit!(upc, CollEnd, tag(hupc_trace::coll::PHASE_INTER), 0);
            }
            self.node_barrier(upc);
            // Distribute: members pull from their (socket) leader over
            // shared memory.
            emit!(upc, CollBegin, tag(hupc_trace::coll::PHASE_INTRA), chunk.len() as u64);
            if three {
                let sl = self.sockets.group_of(me).leader();
                if me == sl && me != node_leader {
                    let b = &mut buf[..chunk.len()];
                    upc.memget(node_leader, data, b); // pshm (possibly NUMA-remote)
                    upc.gasnet().segment(me).write(data, b);
                }
                self.sockets.group_of(me).barrier(upc);
                if me != root {
                    if me == sl {
                        upc.gasnet().segment(me).read(data, chunk);
                    } else {
                        upc.memget(sl, data, chunk);
                    }
                }
            } else if me != root {
                if me == node_leader {
                    upc.gasnet().segment(me).read(data, chunk);
                } else {
                    upc.memget(node_leader, data, chunk);
                }
            }
            emit!(upc, CollEnd, tag(hupc_trace::coll::PHASE_INTRA), 0);
            // Guard scratch reuse by the next chunk / next collective.
            self.node_barrier(upc);
        }
        emit!(upc, CollEnd, tag(hupc_trace::coll::PHASE_OP), 0);
    }

    // ------------------------------------------------------------------
    // allreduce
    // ------------------------------------------------------------------

    fn allreduce_hier(
        &self,
        upc: &Upc<'_>,
        vals: &mut [u64],
        combine: &(dyn Fn(u64, u64) -> u64 + Sync),
        algo: CollAlgo,
    ) {
        let me = upc.mythread();
        let (data, _) = upc.runtime().coll_scratch();
        let gather = data + HALF;
        let grp = self.nodes.len();
        let my_node = self.nodes.group_of(me).clone();
        let node_leader = my_node.leader();
        let lrank = self.leaders.rank_of(me);
        let k = self.arity;
        let three = algo == CollAlgo::ThreeLevel;
        #[cfg(feature = "trace")]
        let tag = |phase| hupc_trace::coll::phase_tag(hupc_trace::coll::ALLREDUCE, algo.trace_tag(), phase);
        emit!(upc, CollBegin, tag(hupc_trace::coll::PHASE_OP), vals.len() as u64);
        // Chunk so every slot family fits its half of the scratch region:
        // member slots in GATHER, socket partials in DATA, child partials
        // in GATHER during the inter tree.
        let max_socket = self.sockets.groups().iter().map(|s| s.size()).max().unwrap_or(1);
        let max_sockets_per_node = self
            .socket_leaders_by_node
            .iter()
            .map(|v| v.len())
            .max()
            .unwrap_or(1);
        let slots = if three {
            max_socket.max(max_sockets_per_node)
        } else {
            self.node_size
        }
        .max(k - 1);
        let c = (HALF / slots).max(1);
        let mut acc = vec![0u64; c.min(vals.len().max(1))];
        let mut tmp = vec![0u64; c.min(vals.len().max(1))];
        for chunk in vals.chunks_mut(c) {
            let cl = chunk.len();
            let acc = &mut acc[..cl];
            let tmp = &mut tmp[..cl];
            // Intra: gather member contributions into the leader, fold in
            // member-rank order (deterministic; combine must be
            // associative + commutative across the tree stages).
            emit!(upc, CollBegin, tag(hupc_trace::coll::PHASE_INTRA), cl as u64);
            if three {
                let sg = self.sockets.group_of(me).clone();
                let sl = sg.leader();
                let sr = sg.rank_of(me).expect("member of own socket group");
                if me != sl {
                    upc.memput(sl, gather + sr * cl, chunk); // pshm
                }
                sg.barrier(upc);
                if me == sl {
                    acc.copy_from_slice(chunk);
                    for r in 1..sg.size() {
                        upc.gasnet().segment(me).read(gather + r * cl, tmp);
                        for (a, &x) in acc.iter_mut().zip(tmp.iter()) {
                            *a = combine(*a, x);
                        }
                    }
                    // Socket partials land in the node leader's DATA slots
                    // (GATHER still holds this socket's member slots).
                    if me != node_leader {
                        let s_idx = self.socket_index_in_node(me);
                        upc.memput(node_leader, data + s_idx * cl, acc);
                    }
                }
                self.node_barrier(upc);
                if me == node_leader {
                    let g = self.nodes.group_index_of(me);
                    for s_idx in 1..self.socket_leaders_by_node[g].len() {
                        upc.gasnet().segment(me).read(data + s_idx * cl, tmp);
                        for (a, &x) in acc.iter_mut().zip(tmp.iter()) {
                            *a = combine(*a, x);
                        }
                    }
                }
            } else {
                let r = my_node.rank_of(me).expect("member of own node group");
                if me != node_leader {
                    upc.memput(node_leader, gather + r * cl, chunk); // pshm
                }
                self.node_barrier(upc);
                if me == node_leader {
                    acc.copy_from_slice(chunk);
                    for r in 1..my_node.size() {
                        upc.gasnet().segment(me).read(gather + r * cl, tmp);
                        for (a, &x) in acc.iter_mut().zip(tmp.iter()) {
                            *a = combine(*a, x);
                        }
                    }
                }
            }
            emit!(upc, CollEnd, tag(hupc_trace::coll::PHASE_INTRA), 0);
            // Inter: k-ary reduce tree to leader rank 0, then k-ary
            // broadcast of the total back over the leaders (via DATA).
            if let Some(lr) = lrank {
                emit!(upc, CollBegin, tag(hupc_trace::coll::PHASE_INTER), cl as u64);
                let mut spans = Vec::new();
                let mut s = 1;
                while s < grp {
                    spans.push(s);
                    s *= k;
                }
                for &span in spans.iter().rev() {
                    self.leaders.barrier(upc);
                    if lr >= span && lr < span * k {
                        let j = lr / span; // 1..k-1
                        let parent = self.leader_thread(lr % span);
                        upc.memput(parent, gather + (j - 1) * cl, acc);
                    }
                    self.leaders.barrier(upc);
                    if lr < span {
                        for j in 1..k {
                            if lr + j * span < grp {
                                upc.gasnet().segment(me).read(gather + (j - 1) * cl, tmp);
                                for (a, &x) in acc.iter_mut().zip(tmp.iter()) {
                                    *a = combine(*a, x);
                                }
                            }
                        }
                    }
                }
                if lr == 0 {
                    upc.gasnet().segment(me).write(data, acc);
                }
                let mut span = 1;
                let mut staged = lr == 0;
                if staged {
                    tmp.copy_from_slice(acc);
                }
                while span < grp {
                    self.leaders.barrier(upc);
                    if lr < span {
                        if !staged {
                            upc.gasnet().segment(me).read(data, tmp);
                            staged = true;
                        }
                        let mut hs = Vec::new();
                        for j in 1..k {
                            let t = lr + j * span;
                            if t < grp {
                                hs.push(upc.memput_nb(self.leader_thread(t), data, tmp));
                            }
                        }
                        for h in hs {
                            upc.wait_sync(h);
                        }
                    }
                    span *= k;
                }
                self.leaders.barrier(upc);
                upc.gasnet().segment(me).read(data, acc); // the total
                emit!(upc, CollEnd, tag(hupc_trace::coll::PHASE_INTER), 0);
            }
            self.node_barrier(upc);
            // Distribute the total back through shared memory.
            emit!(upc, CollBegin, tag(hupc_trace::coll::PHASE_INTRA), cl as u64);
            if three {
                let sl = self.sockets.group_of(me).leader();
                if me == sl && me != node_leader {
                    upc.memget(node_leader, data, tmp);
                    upc.gasnet().segment(me).write(data, tmp);
                }
                self.sockets.group_of(me).barrier(upc);
                if me == node_leader {
                    chunk.copy_from_slice(acc);
                } else if me == sl {
                    upc.gasnet().segment(me).read(data, chunk);
                } else {
                    upc.memget(sl, data, chunk);
                }
            } else if me == node_leader {
                chunk.copy_from_slice(acc);
            } else {
                upc.memget(node_leader, data, chunk);
            }
            emit!(upc, CollEnd, tag(hupc_trace::coll::PHASE_INTRA), 0);
            self.node_barrier(upc);
        }
        emit!(upc, CollEnd, tag(hupc_trace::coll::PHASE_OP), 0);
    }

    // ------------------------------------------------------------------
    // allgather
    // ------------------------------------------------------------------

    fn allgather_hier(&self, upc: &Upc<'_>, mine: &[u64], out: &mut [u64]) {
        let p = upc.threads();
        let me = upc.mythread();
        let b = mine.len();
        let (data, _) = upc.runtime().coll_scratch();
        let grp = self.nodes.len();
        let my_node = self.nodes.group_of(me).clone();
        let node_leader = my_node.leader();
        let g = self.nodes.group_index_of(me);
        #[cfg(feature = "trace")]
        let tag = |phase| {
            hupc_trace::coll::phase_tag(
                hupc_trace::coll::ALLGATHER,
                hupc_trace::coll::ALGO_TWO_LEVEL,
                phase,
            )
        };
        emit!(upc, CollBegin, tag(hupc_trace::coll::PHASE_OP), out.len() as u64);
        out[me * b..(me + 1) * b].copy_from_slice(mine);
        if p > 1 && b > 0 {
            // Intra: stage own block in own DATA, co-members pull it over
            // shared memory.
            emit!(upc, CollBegin, tag(hupc_trace::coll::PHASE_INTRA), (my_node.size() * b) as u64);
            let mut lo = 0;
            while lo < b {
                let hi = (lo + HALF).min(b);
                upc.gasnet().segment(me).write(data, &mine[lo..hi]);
                self.node_barrier(upc);
                for &peer in my_node.members() {
                    if peer != me {
                        upc.memget(peer, data, &mut out[peer * b + lo..peer * b + hi]);
                    }
                }
                self.node_barrier(upc);
                lo = hi;
            }
            emit!(upc, CollEnd, tag(hupc_trace::coll::PHASE_INTRA), 0);
            // Inter: store-and-forward ring over node leaders; each
            // received superblock piece is re-distributed inside the node
            // before the ring advances.
            if grp > 1 {
                emit!(upc, CollBegin, tag(hupc_trace::coll::PHASE_INTER), ((grp - 1) * self.node_size * b) as u64);
                let sb = self.node_size * b; // superblock words
                let right = self.leader_thread((g + 1) % grp);
                let mut buf = vec![0u64; sb.min(HALF)];
                for s in 1..grp {
                    let send_node = (g + grp + 1 - s) % grp;
                    let recv_node = (g + grp - s) % grp;
                    let send_members = self.nodes.groups()[send_node].members().to_vec();
                    let recv_members = self.nodes.groups()[recv_node].members().to_vec();
                    let mut lo = 0;
                    while lo < sb {
                        let hi = (lo + HALF).min(sb);
                        let piece = &mut buf[..hi - lo];
                        if me == node_leader {
                            gather_superblock(out, &send_members, b, lo, hi, piece);
                            upc.memput(right, data, piece); // network
                            self.leaders.barrier(upc);
                        }
                        self.node_barrier(upc);
                        if me == node_leader {
                            upc.gasnet().segment(me).read(data, piece);
                        } else {
                            upc.memget(node_leader, data, piece); // pshm
                        }
                        scatter_superblock(piece, &recv_members, b, lo, out);
                        self.node_barrier(upc);
                        if me == node_leader {
                            // Orders the next piece's put after every
                            // node's reads of this one.
                            self.leaders.barrier(upc);
                        }
                        lo = hi;
                    }
                }
                emit!(upc, CollEnd, tag(hupc_trace::coll::PHASE_INTER), 0);
            }
        }
        emit!(upc, CollEnd, tag(hupc_trace::coll::PHASE_OP), 0);
    }

    // ------------------------------------------------------------------
    // all-to-all
    // ------------------------------------------------------------------

    /// Whether the coalesced hierarchical exchange can run for this block
    /// size (staging reserved and large enough, and >1 node).
    fn exchange_ready(&self, block_words: usize) -> bool {
        self.nodes.len() > 1
            && self
                .staging
                .as_ref()
                .is_some_and(|s| block_words <= s.max_block_words && block_words > 0)
    }

    fn all_exchange_hier(
        &self,
        upc: &Upc<'_>,
        src_off: usize,
        dst_off: usize,
        bw: usize,
        _blocking: bool,
    ) {
        let p = upc.threads();
        let me = upc.mythread();
        let grp = self.nodes.len();
        let m = self.node_size;
        let my_node = self.nodes.group_of(me).clone();
        let node_leader = my_node.leader();
        let r = my_node.rank_of(me).expect("member of own node group");
        let g = self.nodes.group_index_of(me);
        let stage = self.staging.as_ref().expect("exchange staging").arr.word_offset();
        #[cfg(feature = "trace")]
        let tag = |phase| {
            hupc_trace::coll::phase_tag(
                hupc_trace::coll::ALL_EXCHANGE,
                hupc_trace::coll::ALGO_TWO_LEVEL,
                phase,
            )
        };
        emit!(upc, CollBegin, tag(hupc_trace::coll::PHASE_OP), (p * bw) as u64);
        // Intra: co-member blocks go straight to their destination over
        // shared memory (staggered start).
        emit!(upc, CollBegin, tag(hupc_trace::coll::PHASE_INTRA), (m * bw) as u64);
        for d in 0..m {
            let peer = my_node.thread_at((r + d) % m);
            upc.memcpy(peer, dst_off + me * bw, me, src_off + peer * bw, bw);
        }
        emit!(upc, CollEnd, tag(hupc_trace::coll::PHASE_INTRA), 0);
        // Inter: one coalesced message per remote node — all blocks for
        // that node's members, landed in its leader's staging slot for
        // this sender.
        emit!(upc, CollBegin, tag(hupc_trace::coll::PHASE_INTER), ((grp - 1) * m * bw) as u64);
        let mut buf = vec![0u64; m * bw];
        let mut hs = Vec::new();
        for d in 1..grp {
            let h = (g + d) % grp;
            let dest = self.nodes.groups()[h].members();
            for (i, &t) in dest.iter().enumerate() {
                upc.gasnet()
                    .segment(me)
                    .read(src_off + t * bw, &mut buf[i * bw..(i + 1) * bw]);
            }
            let leader_h = self.leader_thread(h);
            hs.push(upc.memput_nb(leader_h, stage + me * (m * bw), &buf));
        }
        for h in hs {
            upc.wait_sync(h);
        }
        upc.barrier();
        // Scatter: each thread pulls its own incoming blocks from its
        // leader's staging over shared memory.
        for d in 1..grp {
            let h = (g + d) % grp;
            for &t in self.nodes.groups()[h].members() {
                upc.memcpy(
                    me,
                    dst_off + t * bw,
                    node_leader,
                    stage + t * (m * bw) + r * bw,
                    bw,
                );
            }
        }
        emit!(upc, CollEnd, tag(hupc_trace::coll::PHASE_INTER), 0);
        // Staging must not be clobbered by a subsequent exchange while
        // anyone is still scattering.
        upc.barrier();
        emit!(upc, CollEnd, tag(hupc_trace::coll::PHASE_OP), 0);
    }

    // ------------------------------------------------------------------
    // barrier
    // ------------------------------------------------------------------

    fn staged_barrier_hier(&self, upc: &Upc<'_>) {
        let me = upc.mythread();
        #[cfg(feature = "trace")]
        let tag = |phase| {
            hupc_trace::coll::phase_tag(
                hupc_trace::coll::BARRIER,
                hupc_trace::coll::ALGO_TWO_LEVEL,
                phase,
            )
        };
        emit!(upc, CollBegin, tag(hupc_trace::coll::PHASE_OP), 0);
        self.node_barrier(upc);
        if self.leaders.rank_of(me).is_some() {
            self.leaders.barrier(upc);
        }
        self.node_barrier(upc);
        emit!(upc, CollEnd, tag(hupc_trace::coll::PHASE_OP), 0);
    }
}

/// Piece `[lo, hi)` of the rank-ordered concatenation of `members`' blocks
/// in `out`, copied into `buf`.
fn gather_superblock(out: &[u64], members: &[usize], b: usize, lo: usize, hi: usize, buf: &mut [u64]) {
    for (i, w) in (lo..hi).enumerate() {
        buf[i] = out[members[w / b] * b + (w % b)];
    }
}

/// Inverse of [`gather_superblock`].
fn scatter_superblock(buf: &[u64], members: &[usize], b: usize, lo: usize, out: &mut [u64]) {
    for (i, &x) in buf.iter().enumerate() {
        let w = lo + i;
        out[members[w / b] * b + (w % b)] = x;
    }
}

impl CollProvider for CollDomain {
    fn broadcast_words(&self, upc: &Upc<'_>, root: usize, words: &mut [u64]) {
        match self.algo_for(CollOp::Broadcast, words.len()) {
            CollAlgo::Flat => upc.broadcast_words_flat(root, words),
            algo => self.broadcast_hier(upc, root, words, algo),
        }
    }

    fn allreduce_word_vec(&self, upc: &Upc<'_>, vals: &mut [u64], combine: &(dyn Fn(u64, u64) -> u64 + Sync)) {
        match self.algo_for(CollOp::Allreduce, vals.len()) {
            CollAlgo::Flat => upc.allreduce_word_vec_flat(vals, combine),
            algo => self.allreduce_hier(upc, vals, combine, algo),
        }
    }

    fn allgather_words(&self, upc: &Upc<'_>, mine: &[u64], out: &mut [u64]) {
        match self.algo_for(CollOp::Allgather, out.len()) {
            CollAlgo::Flat => upc.allgather_words_flat(mine, out),
            _ => self.allgather_hier(upc, mine, out),
        }
    }

    fn all_exchange_words(&self, upc: &Upc<'_>, src_off: usize, dst_off: usize, block_words: usize, blocking: bool) {
        let algo = self.algo_for(CollOp::AllExchange, upc.threads() * block_words);
        if algo == CollAlgo::Flat || !self.exchange_ready(block_words) {
            upc.all_exchange_words_flat(src_off, dst_off, block_words, blocking);
        } else {
            self.all_exchange_hier(upc, src_off, dst_off, block_words, blocking);
        }
    }

    fn staged_barrier(&self, upc: &Upc<'_>) {
        match self.algo_for(CollOp::Barrier, 0) {
            CollAlgo::Flat => upc.barrier(),
            _ => self.staged_barrier_hier(upc),
        }
    }
}
