//! Algorithm selection: flat vs two-level vs three-level per topology,
//! payload and operation.
//!
//! §3.2's thesis is that the *same* collective should be realized
//! differently on a flat cluster, an SMP cluster, and a ccNUMA SMP cluster.
//! `CollPlan` captures that decision point: `Auto` queries the machine
//! (node-group and socket-group counts) plus the payload size; `Force` pins
//! one algorithm for ablation sweeps. The `HUPC_COLL_PLAN` environment
//! variable overrides either from outside the binary (`flat` / `two` /
//! `three` / `auto`).

/// Which decomposition a collective runs with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CollAlgo {
    /// Topology-blind single-level algorithm (the `hupc-upc` reference
    /// path): one binomial tree / linear gather over all `THREADS`.
    Flat,
    /// node → core: intra-node shared-memory phase plus an inter-node-leader
    /// network phase.
    TwoLevel,
    /// node → socket → core: like two-level, with an extra socket-leader
    /// stage inside each node (ccNUMA-aware). Ops without a three-level
    /// variant (allgather, all-to-all, barrier) clamp to two-level.
    ThreeLevel,
}

impl CollAlgo {
    /// The `hupc-trace` algorithm tag for this decomposition.
    #[cfg(feature = "trace")]
    pub fn trace_tag(self) -> u64 {
        match self {
            CollAlgo::Flat => hupc_trace::coll::ALGO_FLAT,
            CollAlgo::TwoLevel => hupc_trace::coll::ALGO_TWO_LEVEL,
            CollAlgo::ThreeLevel => hupc_trace::coll::ALGO_THREE_LEVEL,
        }
    }
}

/// Per-job selection policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CollPlan {
    /// Choose per operation from the machine topology and payload size:
    /// flat on single-node jobs (bit-identical to the reference path),
    /// three-level for large broadcast/reduce payloads on multi-socket
    /// nodes, two-level otherwise.
    Auto,
    /// Always use one algorithm (ablation knob).
    Force(CollAlgo),
}

impl CollPlan {
    /// Apply the `HUPC_COLL_PLAN` environment override, if set (unknown
    /// values are ignored so a typo degrades to the configured plan).
    pub fn from_env(self) -> CollPlan {
        match std::env::var("HUPC_COLL_PLAN").as_deref() {
            Ok("flat") => CollPlan::Force(CollAlgo::Flat),
            Ok("two") => CollPlan::Force(CollAlgo::TwoLevel),
            Ok("three") => CollPlan::Force(CollAlgo::ThreeLevel),
            Ok("auto") => CollPlan::Auto,
            _ => self,
        }
    }
}

/// The collective operations a plan decides for (payload thresholds differ
/// per op).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CollOp {
    Broadcast,
    Allreduce,
    Allgather,
    AllExchange,
    Barrier,
}

/// Payload (in words) below which a socket stage is not worth its extra
/// barriers: small messages are latency-bound and the node leader's memory
/// controller is not yet the bottleneck.
pub const THREE_LEVEL_MIN_WORDS: usize = 64;

/// Resolve a plan to a concrete algorithm.
///
/// `node_groups` / `socket_groups` are the partition sizes of the job
/// (`socket_groups > node_groups` means at least one node spans several
/// occupied sockets).
pub fn resolve(
    plan: CollPlan,
    op: CollOp,
    payload_words: usize,
    node_groups: usize,
    socket_groups: usize,
) -> CollAlgo {
    let clamp3 = |a: CollAlgo| match (a, op) {
        (CollAlgo::ThreeLevel, CollOp::Broadcast | CollOp::Allreduce) => CollAlgo::ThreeLevel,
        (CollAlgo::ThreeLevel, _) => CollAlgo::TwoLevel,
        (a, _) => a,
    };
    match plan {
        CollPlan::Force(a) => clamp3(a),
        CollPlan::Auto => {
            if node_groups <= 1 {
                // Single shared-memory domain: the flat path already runs
                // entirely over pshm and stays bit-identical to the
                // reference collectives.
                return CollAlgo::Flat;
            }
            if socket_groups > node_groups && payload_words >= THREE_LEVEL_MIN_WORDS {
                return clamp3(CollAlgo::ThreeLevel);
            }
            CollAlgo::TwoLevel
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_is_flat_on_single_node() {
        for op in [CollOp::Broadcast, CollOp::Allreduce, CollOp::Allgather] {
            assert_eq!(resolve(CollPlan::Auto, op, 4096, 1, 2), CollAlgo::Flat);
        }
    }

    #[test]
    fn auto_picks_three_level_only_for_large_bcast_reduce_on_multisocket() {
        let r = |op, words| resolve(CollPlan::Auto, op, words, 4, 8);
        assert_eq!(r(CollOp::Broadcast, 1024), CollAlgo::ThreeLevel);
        assert_eq!(r(CollOp::Allreduce, 1024), CollAlgo::ThreeLevel);
        assert_eq!(r(CollOp::Broadcast, 8), CollAlgo::TwoLevel);
        assert_eq!(r(CollOp::Allgather, 1024), CollAlgo::TwoLevel);
        assert_eq!(r(CollOp::Barrier, 0), CollAlgo::TwoLevel);
        // one socket per node occupied: no socket stage to exploit
        assert_eq!(
            resolve(CollPlan::Auto, CollOp::Broadcast, 1024, 4, 4),
            CollAlgo::TwoLevel
        );
    }

    #[test]
    fn force_clamps_three_level_for_unsupported_ops() {
        let f = CollPlan::Force(CollAlgo::ThreeLevel);
        assert_eq!(resolve(f, CollOp::Allreduce, 1, 2, 4), CollAlgo::ThreeLevel);
        assert_eq!(resolve(f, CollOp::Allgather, 1, 2, 4), CollAlgo::TwoLevel);
        assert_eq!(resolve(f, CollOp::AllExchange, 1, 2, 4), CollAlgo::TwoLevel);
    }
}
