//! `hupc-coll` — topology-aware hierarchical collectives.
//!
//! The thesis' Chapter 3 argument applied to collectives: a cluster of SMP
//! (possibly ccNUMA) nodes should not run a collective as one flat
//! algorithm over `THREADS` ranks. Instead every operation decomposes into
//! an **intra-group shared-memory phase** (leader election plus direct
//! member↔leader transfers over the castable `pshm` paths — no network
//! traffic) and an **inter-leader network phase** (k-ary trees, a
//! store-and-forward ring, coalesced pairwise exchange) over one
//! participant per node.
//!
//! ```
//! use hupc_coll::CollDomain;
//! use hupc_upc::{UpcConfig, UpcJob};
//!
//! let job = UpcJob::new(UpcConfig::test_default(8, 2));
//! CollDomain::install_auto(&job); // Upc collectives now delegate here
//! job.run(|upc| {
//!     let sum = upc.allreduce_sum_u64(upc.mythread() as u64);
//!     assert_eq!(sum, 28);
//! });
//! ```
//!
//! Algorithm selection ([`CollPlan`]) is automatic per machine topology,
//! payload size and operation — flat on a single node (bit-identical to the
//! `hupc-upc` reference path), two-level (node → core) otherwise, and
//! three-level (node → socket → core) for large broadcast/reduce payloads
//! on multi-socket nodes — with `CollPlan::Force` and the `HUPC_COLL_PLAN`
//! environment variable as ablation overrides. With the `trace` feature,
//! every operation and phase emits `CollBegin`/`CollEnd` events tagged with
//! the algorithm (see `hupc_trace::coll`).

mod domain;
mod plan;

pub use domain::CollDomain;
pub use plan::{resolve, CollAlgo, CollOp, CollPlan, THREE_LEVEL_MIN_WORDS};

#[cfg(test)]
mod tests {
    use super::*;
    use hupc_upc::{UpcConfig, UpcJob};

    fn job(p: usize, nodes: usize) -> UpcJob {
        UpcJob::new(UpcConfig::test_default(p, nodes))
    }

    #[test]
    fn install_auto_runs_all_ops_two_level() {
        let j = job(8, 2);
        CollDomain::install_auto(&j);
        let src = j.alloc_shared::<u64>(8 * 8, 8);
        let dst = j.alloc_shared::<u64>(8 * 8, 8);
        j.run(move |upc| {
            let me = upc.mythread() as u64;
            // broadcast
            let mut w = if me == 3 { vec![7, 8, 9] } else { vec![0; 3] };
            upc.broadcast_words(3, &mut w);
            assert_eq!(w, vec![7, 8, 9]);
            // allreduce
            assert_eq!(upc.allreduce_sum_u64(me + 1), 36);
            assert_eq!(upc.allreduce_max_u64(me), 7);
            // allgather
            let mine = [me * 10, me * 10 + 1];
            let mut out = vec![0u64; 16];
            upc.allgather_words(&mine, &mut out);
            for t in 0..8u64 {
                assert_eq!(out[t as usize * 2], t * 10);
                assert_eq!(out[t as usize * 2 + 1], t * 10 + 1);
            }
            // all-to-all (no staging reserved → flat fallback, still right)
            src.with_local_words(&upc, |ws| {
                for (j, x) in ws.iter_mut().enumerate() {
                    *x = me * 100 + j as u64;
                }
            });
            upc.barrier();
            upc.all_exchange(src, dst, 1, true);
            dst.with_local_words(&upc, |ws| {
                for j in 0..8u64 {
                    assert_eq!(ws[j as usize], j * 100 + me);
                }
            });
            // staged barrier
            upc.staged_barrier();
        });
    }

    #[test]
    fn forced_plans_agree_on_results() {
        for plan in [
            CollPlan::Force(CollAlgo::Flat),
            CollPlan::Force(CollAlgo::TwoLevel),
            CollPlan::Force(CollAlgo::ThreeLevel),
        ] {
            let j = job(8, 2);
            CollDomain::for_job(&j, plan).install(&j);
            j.run(move |upc| {
                let me = upc.mythread() as u64;
                // payload > one pipeline chunk to exercise chunking
                let n = 300;
                let mut w: Vec<u64> = if me == 1 {
                    (0..n).map(|i| i * 3 + 1).collect()
                } else {
                    vec![0; n as usize]
                };
                upc.broadcast_words(1, &mut w);
                assert_eq!(w[299], 299 * 3 + 1, "{plan:?}");
                let mut v: Vec<u64> = (0..40).map(|i| me + i).collect();
                upc.allreduce_word_vec(&mut v, &|a, b| a.wrapping_add(b));
                for (i, &x) in v.iter().enumerate() {
                    assert_eq!(x, 28 + 8 * i as u64, "{plan:?}");
                }
            });
        }
    }

    #[test]
    fn coalesced_exchange_matches_flat_semantics() {
        let j = job(8, 2);
        let src = j.alloc_shared::<u64>(8 * 8 * 2, 16);
        let dst = j.alloc_shared::<u64>(8 * 8 * 2, 16);
        CollDomain::for_job(&j, CollPlan::Auto)
            .reserve_exchange(&j, 2)
            .install(&j);
        j.run(move |upc| {
            let me = upc.mythread() as u64;
            src.with_local_words(&upc, |ws| {
                for (i, x) in ws.iter_mut().enumerate() {
                    *x = me * 1000 + i as u64;
                }
            });
            upc.barrier();
            upc.all_exchange(src, dst, 2, false);
            dst.with_local_words(&upc, |ws| {
                for t in 0..8u64 {
                    assert_eq!(ws[t as usize * 2], t * 1000 + me * 2);
                    assert_eq!(ws[t as usize * 2 + 1], t * 1000 + me * 2 + 1);
                }
            });
        });
    }

    #[test]
    fn uneven_socket_groups_still_reduce() {
        // 6 threads over 2 nodes (3 per node on a 2×2 machine): sockets
        // split 2+1 inside each node — exercises non-uniform socket groups.
        let j = job(6, 2);
        CollDomain::for_job(&j, CollPlan::Force(CollAlgo::ThreeLevel)).install(&j);
        j.run(|upc| {
            let me = upc.mythread() as u64;
            assert_eq!(upc.allreduce_sum_u64(me), 15);
            let mut w = if me == 5 { vec![11; 5] } else { vec![0; 5] };
            upc.broadcast_words(5, &mut w);
            assert_eq!(w, vec![11; 5]);
        });
    }

    #[test]
    fn single_node_auto_stays_flat() {
        let j = job(4, 1);
        let d = CollDomain::for_job(&j, CollPlan::Auto);
        assert_eq!(d.algo_for(CollOp::Broadcast, 4096), CollAlgo::Flat);
        assert_eq!(d.algo_for(CollOp::Allreduce, 1), CollAlgo::Flat);
        d.install(&j);
        j.run(|upc| {
            assert_eq!(upc.allreduce_sum_u64(1), 4);
            upc.staged_barrier();
        });
    }

    #[test]
    fn staged_barrier_synchronizes_all_threads() {
        let j = job(8, 2);
        CollDomain::install_auto(&j);
        let flag = j.alloc_shared::<u64>(8, 1);
        j.run(move |upc| {
            let me = upc.mythread();
            upc.ctx().advance(hupc_sim::time::us(me as u64 * 3));
            flag.put(&upc, me, 1);
            upc.staged_barrier();
            for i in 0..8 {
                assert_eq!(flag.get(&upc, i), 1, "thread {i} not arrived");
            }
        });
    }

    #[test]
    #[should_panic(expected = "already installed")]
    fn double_install_panics() {
        let j = job(4, 1);
        CollDomain::install_auto(&j);
        CollDomain::install_auto(&j);
    }
}
