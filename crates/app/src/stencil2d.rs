//! 2-D Jacobi heat stencil, promoted from `examples/stencil.rs` to a
//! registry workload.
//!
//! Row-block decomposition: each thread owns a band of grid rows plus a
//! ghost row above and below. Ghost exchange follows the Chapter 3
//! pattern — a cast-table memory copy when the neighbour shares a node, a
//! one-sided put otherwise. Insulated boundaries, so total heat is
//! conserved; the oracle additionally demands bit-identity with a
//! sequential sweep of the same update.

use std::sync::Arc;

use hupc_groups::{GroupLevel, GroupSet};
use hupc_sim::{time, SimCell};
use hupc_upc::{SharedArray, Upc, UpcJob};

use crate::params::Params;
use crate::workload::{AppError, RunEnv, Verified, Workload};

/// splitmix64 (the repo-wide seeding PRNG).
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Initial temperature of cell `(r, c)`: uniform in [0, 1).
fn init_cell(seed: u64, n: usize, r: usize, c: usize) -> f64 {
    (splitmix(seed ^ (r * n + c) as u64) >> 11) as f64 / (1u64 << 53) as f64
}

/// One conservative update: add `alpha * (neighbour - v)` per existing
/// neighbour, in up/down/left/right order. Every flux term appears in both
/// cells with opposite sign, so the global sum is invariant; the fixed
/// order makes the float result bit-reproducible, which is what lets the
/// distributed sweep be compared bit-for-bit with this sequential one.
fn seq_step(cur: &[f64], next: &mut [f64], n: usize, alpha: f64) {
    for r in 0..n {
        for c in 0..n {
            let v = cur[r * n + c];
            let mut acc = v;
            if r > 0 {
                acc += alpha * (cur[(r - 1) * n + c] - v);
            }
            if r + 1 < n {
                acc += alpha * (cur[(r + 1) * n + c] - v);
            }
            if c > 0 {
                acc += alpha * (cur[r * n + c - 1] - v);
            }
            if c + 1 < n {
                acc += alpha * (cur[r * n + c + 1] - v);
            }
            next[r * n + c] = acc;
        }
    }
}

/// Sequential reference: the full grid after `steps` sweeps.
fn seq_reference(seed: u64, n: usize, steps: usize, alpha: f64) -> Vec<f64> {
    let mut cur: Vec<f64> = (0..n * n)
        .map(|i| init_cell(seed, n, i / n, i % n))
        .collect();
    let mut next = vec![0.0; n * n];
    for _ in 0..steps {
        seq_step(&cur, &mut next, n, alpha);
        std::mem::swap(&mut cur, &mut next);
    }
    cur
}

/// Send one full edge row into `neighbor`'s ghost slot: cast-table copy
/// inside a node, one-sided put across nodes (the `examples/stencil.rs`
/// idiom, widened from one cell to a row).
#[allow(clippy::too_many_arguments)]
fn send_ghost_row(
    upc: &Upc<'_>,
    groups: &GroupSet,
    arr: &SharedArray<f64>,
    neighbor: usize,
    slot_row: usize,
    row: &[u64],
    n: usize,
) {
    let g = groups.group_of(upc.mythread());
    if g.rank_of(neighbor).is_some() && g.has_cast_table() {
        g.with_member_words(upc, arr, neighbor, |w| {
            w[slot_row * n..(slot_row + 1) * n].copy_from_slice(row)
        });
        upc.note_socket_traffic(upc.segment_home(neighbor), 8 * n as u64);
    } else {
        upc.memput(neighbor, arr.word_offset() + slot_row * n, row);
    }
}

/// The registered workload.
pub struct Stencil2dWorkload;

impl Workload for Stencil2dWorkload {
    fn name(&self) -> &'static str {
        "stencil2d"
    }

    fn description(&self) -> &'static str {
        "2-D Jacobi heat: row-block halo exchange, bit-exact vs sequential sweep"
    }

    fn param_spec(&self) -> Vec<(&'static str, String, &'static str)> {
        vec![
            ("n", "64".into(), "grid edge (rows divisible by threads)"),
            ("steps", "8".into(), "Jacobi sweeps"),
            ("alpha", "0.2".into(), "diffusion coefficient (< 0.25)"),
            ("seed", "11".into(), "initial-temperature seed"),
        ]
    }

    fn run(&self, env: &RunEnv, params: &Params) -> Result<Verified, AppError> {
        let mut r = params.reader();
        let n = r.usize_or("n", 64)?;
        let steps = r.usize_or("steps", 8)?;
        let alpha = r.f64_or("alpha", 0.2)?;
        let seed = r.u64_or("seed", 11)?;
        r.finish()?;
        let p = env.threads;
        if n % p != 0 || n / p < 1 {
            return Err(AppError::Unsupported(format!(
                "stencil2d: grid rows {n} must divide evenly over {p} threads"
            )));
        }
        let rows = n / p; // interior rows per thread
        let block = (rows + 2) * n; // + ghost row above and below

        let seg = (hupc_upc::SCRATCH_WORDS + 2 * block + 256)
            .next_power_of_two()
            .max(1 << 10);
        let job = UpcJob::new(env.upc_config(seg));
        let a = job.alloc_shared::<f64>(p * block, block);
        let b = job.alloc_shared::<f64>(p * block, block);
        let groups = Arc::new(GroupSet::partition(
            &mut job.kernel(),
            job.runtime(),
            GroupLevel::Node,
        ));
        hupc_coll::CollDomain::install_auto(&job);

        let out: Arc<SimCell<(u64, f64, f64, f64)>> = Arc::new(SimCell::default());
        let out2 = Arc::clone(&out);

        job.run(move |upc| {
            let me = upc.mythread();
            // Init my band (untimed setup) and zero the ghosts.
            a.with_local_words(&upc, |w| {
                w.fill(0.0f64.to_bits());
                for lr in 0..rows {
                    for c in 0..n {
                        w[(lr + 1) * n + c] = init_cell(seed, n, me * rows + lr, c).to_bits();
                    }
                }
            });
            b.with_local_words(&upc, |w| w.fill(0.0f64.to_bits()));
            upc.barrier();
            let t0 = upc.now();

            let (mut cur, mut next) = (a, b);
            for _ in 0..steps {
                // Halo: my first interior row to the upper neighbour's
                // bottom ghost, my last to the lower neighbour's top ghost.
                let (first, last) = cur.with_local_words(&upc, |w| {
                    (w[n..2 * n].to_vec(), w[rows * n..(rows + 1) * n].to_vec())
                });
                if me > 0 {
                    send_ghost_row(&upc, &groups, &cur, me - 1, rows + 1, &first, n);
                }
                if me + 1 < p {
                    send_ghost_row(&upc, &groups, &cur, me + 1, 0, &last, n);
                }
                upc.barrier();

                // Local sweep (privatized), same flux order as `seq_step`.
                let vals: Vec<f64> = cur.with_local_words(&upc, |w| {
                    w.iter().map(|&x| f64::from_bits(x)).collect()
                });
                next.with_local_words(&upc, |dst| {
                    for lr in 0..rows {
                        let gr = me * rows + lr; // global row
                        let row0 = (lr + 1) * n;
                        for c in 0..n {
                            let v = vals[row0 + c];
                            let mut acc = v;
                            if gr > 0 {
                                acc += alpha * (vals[row0 - n + c] - v);
                            }
                            if gr + 1 < n {
                                acc += alpha * (vals[row0 + n + c] - v);
                            }
                            if c > 0 {
                                acc += alpha * (vals[row0 + c - 1] - v);
                            }
                            if c + 1 < n {
                                acc += alpha * (vals[row0 + c + 1] - v);
                            }
                            dst[row0 + c] = acc.to_bits();
                        }
                    }
                });
                upc.charge_mem_traffic(upc.segment_home(me), rows * n * 48);
                upc.barrier();
                std::mem::swap(&mut cur, &mut next);
            }
            let dt = upc.now() - t0;

            // Oracle (untimed): bit-identity with the sequential sweep plus
            // heat conservation.
            let want = seq_reference(seed, n, steps, alpha);
            let mut mismatches = 0u64;
            let mut local_sum = 0.0f64;
            cur.with_local_words(&upc, |w| {
                for lr in 0..rows {
                    for c in 0..n {
                        let got = f64::from_bits(w[(lr + 1) * n + c]);
                        local_sum += got;
                        if got.to_bits() != want[(me * rows + lr) * n + c].to_bits() {
                            mismatches += 1;
                        }
                    }
                }
            });
            let mismatches = upc.allreduce_sum_u64(mismatches);
            let total = upc.allreduce_sum_f64(local_sum);
            if me == 0 {
                let want_total: f64 = (0..n * n)
                    .map(|i| init_cell(seed, n, i / n, i % n))
                    .sum();
                out2.set((
                    mismatches,
                    total,
                    want_total,
                    time::as_secs_f64(dt),
                ));
            }
        });

        let (mismatches, total, want_total, secs) = out.get();
        let drift = (total - want_total).abs() / want_total.max(1.0);
        let passed = mismatches == 0 && drift < 1e-9;
        Ok(Verified {
            passed,
            oracle: format!(
                "{mismatches} cells diverge from the sequential sweep; \
                 heat drift {drift:.3e} (tol 1e-9)"
            ),
            metrics: vec![
                ("mismatches".into(), mismatches as f64),
                ("total_heat".into(), total),
                ("cells_per_sec".into(), (n * n * steps) as f64 / secs.max(1e-12)),
            ],
            end_seconds: secs,
            metrics_json: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stencil2d_is_bit_exact_and_conservative() {
        let v = run(4, 2);
        assert!(v.passed, "{}", v.oracle);
        assert_eq!(v.metric("mismatches"), Some(0.0));
    }

    #[test]
    fn thread_count_does_not_change_the_answer() {
        // Both layouts must be bit-identical to the same sequential
        // reference (that's what `passed` asserts); the reduced totals may
        // round differently per layout, so compare those loosely.
        let a = run(2, 1);
        let b = run(4, 2);
        assert!(a.passed, "{}", a.oracle);
        assert!(b.passed, "{}", b.oracle);
        let (ta, tb) = (a.metric("total_heat").unwrap(), b.metric("total_heat").unwrap());
        assert!((ta - tb).abs() / ta.abs() < 1e-12, "{ta} vs {tb}");
    }

    fn run(threads: usize, nodes: usize) -> Verified {
        let env = RunEnv::small(threads, nodes);
        let params = Params::parse(&["n=32", "steps=5"]).unwrap();
        Stencil2dWorkload.run(&env, &params).unwrap()
    }
}
