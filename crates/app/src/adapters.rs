//! Adapters migrating the four thesis apps onto the [`Workload`] trait.
//!
//! The kernels stay in their own crates; each adapter is just param
//! parsing, env plumbing, and oracle mapping. Equivalence with the direct
//! drivers is pinned in `tests/equivalence.rs`.

use hupc_fft::{run_ft_upc, FtConfig};
use hupc_gups::{run_gups, GupsConfig, Routing};
use hupc_stream::{run_twisted_triad, TriadVariant, TwistedConfig};
use hupc_uts::{run_uts, sequential_traverse, StealStrategy, UtsConfig};

use crate::params::Params;
use crate::workload::{AppError, RunEnv, Verified, Workload};

// ---------------------------------------------------------------------------
// UTS
// ---------------------------------------------------------------------------

/// Unbalanced Tree Search: hierarchical work stealing over the steal-stack.
pub struct UtsWorkload;

/// Build the UtsConfig an `(env, params)` pair denotes. Shared with the
/// equivalence tests, so "the adapter runs the same config" is checkable.
pub fn uts_config(env: &RunEnv, params: &Params) -> Result<UtsConfig, AppError> {
    let mut r = params.reader();
    let seed = r.u32_or("seed", 5)?;
    let strategy = match r.choice_or("strategy", &["random", "local", "rapid"], "local")? {
        "random" => StealStrategy::Random,
        "local" => StealStrategy::LocalFirst,
        _ => StealStrategy::LocalFirstRapid,
    };
    r.finish()?;
    let mut cfg = UtsConfig::small(env.threads, env.nodes_used, strategy, seed);
    cfg.machine = env.machine.clone();
    cfg.conduit = env.conduit.clone();
    cfg.fault = env.fault.clone();
    Ok(cfg)
}

impl Workload for UtsWorkload {
    fn name(&self) -> &'static str {
        "uts"
    }

    fn description(&self) -> &'static str {
        "unbalanced tree search: hierarchical work stealing (thesis Fig 3.3)"
    }

    fn param_spec(&self) -> Vec<(&'static str, String, &'static str)> {
        vec![
            ("seed", "5".into(), "tree root seed (u32)"),
            ("strategy", "local".into(), "victim policy: random|local|rapid"),
        ]
    }

    fn run(&self, env: &RunEnv, params: &Params) -> Result<Verified, AppError> {
        let cfg = uts_config(env, params)?;
        let (want_nodes, want_depth, want_leaves) = sequential_traverse(&cfg.tree);
        let r = run_uts(cfg);
        let passed = r.total_nodes == want_nodes
            && r.max_depth == want_depth as u64
            && r.leaves == want_leaves;
        Ok(Verified {
            passed,
            oracle: format!(
                "traversed {} nodes (want {}), depth {} (want {}), leaves {} (want {})",
                r.total_nodes, want_nodes, r.max_depth, want_depth, r.leaves, want_leaves
            ),
            metrics: vec![
                ("total_nodes".into(), r.total_nodes as f64),
                ("max_depth".into(), r.max_depth as f64),
                ("leaves".into(), r.leaves as f64),
                ("mnodes_per_sec".into(), r.mnodes_per_sec),
                ("local_steal_ratio".into(), r.local_steal_ratio()),
                ("comm_failures".into(), r.comm_failures as f64),
            ],
            end_seconds: r.seconds,
            metrics_json: None,
        })
    }
}

// ---------------------------------------------------------------------------
// NAS FT
// ---------------------------------------------------------------------------

/// NAS FT: distributed 3-D FFT with an all-to-all exchange.
pub struct FtWorkload;

pub fn ft_config(env: &RunEnv, params: &Params) -> Result<FtConfig, AppError> {
    let mut r = params.reader();
    let nx = r.usize_or("nx", 8)?;
    let ny = r.usize_or("ny", 8)?;
    let nz = r.usize_or("nz", 16)?;
    let iters = r.usize_or("iters", 2)?;
    let exchange = match r.choice_or("exchange", &["split", "overlap", "hier"], "split")? {
        "split" => hupc_fft::ExchangeKind::SplitPhase,
        "overlap" => hupc_fft::ExchangeKind::Overlap,
        _ => hupc_fft::ExchangeKind::Hierarchical,
    };
    r.finish()?;
    let mut cfg = FtConfig::test_custom(nx, ny, nz, iters, env.threads, env.nodes_used);
    cfg.machine = env.machine.clone();
    cfg.conduit = env.conduit.clone();
    cfg.exchange = exchange;
    cfg.fault = env.fault.clone();
    Ok(cfg)
}

impl Workload for FtWorkload {
    fn name(&self) -> &'static str {
        "ft"
    }

    fn description(&self) -> &'static str {
        "NAS FT: 3-D FFT with all-to-all exchange, checksum-verified"
    }

    fn param_spec(&self) -> Vec<(&'static str, String, &'static str)> {
        vec![
            ("nx", "8".into(), "grid x (power of two)"),
            ("ny", "8".into(), "grid y (power of two)"),
            ("nz", "16".into(), "grid z (power of two, divisible by threads)"),
            ("iters", "2".into(), "evolve iterations"),
            ("exchange", "split".into(), "exchange schedule: split|overlap|hier"),
        ]
    }

    fn run(&self, env: &RunEnv, params: &Params) -> Result<Verified, AppError> {
        let cfg = ft_config(env, params)?;
        let class = cfg.class;
        let want = hupc_fft::seq_checksums(class);
        let r = run_ft_upc(cfg);
        let mut worst = 0.0f64;
        let mut passed = r.checksums.len() == want.len();
        for ((re, im), c) in r.checksums.iter().zip(&want) {
            let scale = c.re.abs().max(c.im.abs()).max(1.0);
            let err = ((re - c.re).abs() / scale).max((im - c.im).abs() / scale);
            worst = worst.max(err);
            passed &= err < 1e-9;
        }
        Ok(Verified {
            passed,
            oracle: format!(
                "{} checksums vs sequential FT, worst relative error {worst:.3e} (tol 1e-9)",
                r.checksums.len()
            ),
            metrics: vec![
                ("gflops".into(), r.gflops),
                ("comm_seconds".into(), r.comm_seconds),
                ("fft2d_seconds".into(), r.fft2d_seconds),
                ("checksum_worst_rel_err".into(), worst),
            ],
            end_seconds: r.total_seconds,
            metrics_json: None,
        })
    }
}

// ---------------------------------------------------------------------------
// GUPS
// ---------------------------------------------------------------------------

/// HPCC RandomAccess with routed update aggregation.
pub struct GupsWorkload;

pub fn gups_config(env: &RunEnv, params: &Params) -> Result<GupsConfig, AppError> {
    let mut r = params.reader();
    let routing = match r.choice_or("routing", &["direct", "perthread", "hier"], "hier")? {
        "direct" => Routing::Direct,
        "perthread" => Routing::PerThread,
        _ => Routing::Hierarchical,
    };
    let updates = r.usize_or("updates", 300)?;
    let seed = r.u64_or("seed", 0xD00D)?;
    r.finish()?;
    let mut cfg = GupsConfig::small(env.threads, env.nodes_used, routing);
    cfg.machine = env.machine.clone();
    cfg.conduit = env.conduit.clone();
    cfg.updates_per_thread = updates;
    cfg.seed = seed;
    cfg.fault = env.fault.clone();
    Ok(cfg)
}

impl Workload for GupsWorkload {
    fn name(&self) -> &'static str {
        "gups"
    }

    fn description(&self) -> &'static str {
        "HPCC RandomAccess: routed update aggregation, verified vs serial table"
    }

    fn param_spec(&self) -> Vec<(&'static str, String, &'static str)> {
        vec![
            ("routing", "hier".into(), "update routing: direct|perthread|hier"),
            ("updates", "300".into(), "updates per thread"),
            ("seed", "53261".into(), "update-stream seed (u64)"),
        ]
    }

    fn run(&self, env: &RunEnv, params: &Params) -> Result<Verified, AppError> {
        let cfg = gups_config(env, params)?;
        let routing = cfg.routing;
        let r = run_gups(cfg);
        // HPCC tolerates 1% lost updates for the racy direct routing; the
        // aggregated routings are conflict-free and must be exact.
        let passed = match routing {
            Routing::Direct => (r.errors as f64) < 0.01 * r.total_updates as f64,
            _ => r.errors == 0,
        };
        Ok(Verified {
            passed,
            oracle: format!(
                "{} of {} table words diverge from the serial reference ({:?})",
                r.errors, r.total_updates, routing
            ),
            metrics: vec![
                ("gups".into(), r.gups),
                ("total_updates".into(), r.total_updates as f64),
                ("errors".into(), r.errors as f64),
                ("exchange_seconds".into(), r.exchange_seconds),
            ],
            end_seconds: r.seconds,
            metrics_json: None,
        })
    }
}

// ---------------------------------------------------------------------------
// STREAM (twisted triad)
// ---------------------------------------------------------------------------

/// The twisted STREAM triad (thesis Table 3.1).
pub struct StreamWorkload;

pub fn stream_config(env: &RunEnv, params: &Params) -> Result<TwistedConfig, AppError> {
    let mut r = params.reader();
    let variant = match r.choice_or(
        "variant",
        &["baseline", "relocalize", "cast", "openmp"],
        "cast",
    )? {
        "baseline" => TriadVariant::UpcBaseline,
        "relocalize" => TriadVariant::UpcRelocalize,
        "cast" => TriadVariant::UpcCast,
        _ => TriadVariant::OpenMpAnalog,
    };
    let elems = r.usize_or("elems", 1 << 12)?;
    let iters = r.usize_or("iters", 2)?;
    r.finish()?;
    if env.threads % 2 != 0 {
        return Err(AppError::Unsupported(
            "stream: twisting pairs threads odd/even (threads must be even)".into(),
        ));
    }
    let mut cfg = TwistedConfig::small(variant);
    cfg.machine = env.machine.clone();
    cfg.threads = env.threads;
    cfg.elems_per_thread = elems;
    cfg.iters = iters;
    cfg.fault = env.fault.clone();
    Ok(cfg)
}

impl Workload for StreamWorkload {
    fn name(&self) -> &'static str {
        "stream"
    }

    fn description(&self) -> &'static str {
        "twisted STREAM triad: privatization cost ablation (thesis Table 3.1)"
    }

    fn param_spec(&self) -> Vec<(&'static str, String, &'static str)> {
        vec![
            (
                "variant",
                "cast".into(),
                "triad variant: baseline|relocalize|cast|openmp",
            ),
            ("elems", "4096".into(), "array elements per thread"),
            ("iters", "2".into(), "triad iterations"),
        ]
    }

    fn default_env(&self) -> RunEnv {
        // The triad is a single-node kernel with odd/even thread pairing.
        RunEnv::small(4, 1)
    }

    fn run(&self, env: &RunEnv, params: &Params) -> Result<Verified, AppError> {
        let cfg = stream_config(env, params)?;
        let r = run_twisted_triad(cfg);
        Ok(Verified {
            passed: r.max_error == 0.0,
            oracle: format!(
                "max |a - (b + s*c)| = {:.3e} (must be exactly 0)",
                r.max_error
            ),
            metrics: vec![("gbps".into(), r.gbps), ("max_error".into(), r.max_error)],
            end_seconds: r.seconds,
            metrics_json: None,
        })
    }
}
