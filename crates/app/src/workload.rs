//! The workload contract: environment in, verified result out.

use std::fmt;

use hupc_gasnet::FaultPlan;
use hupc_net::Conduit;
use hupc_sim::SimBackend;
use hupc_topo::MachineSpec;
use hupc_upc::UpcConfig;

use crate::params::{ParamError, Params};

/// Everything outside the workload's own knobs: the simulated platform, the
/// SPMD layout, the engine backend, and an optional fault plan. Workloads
/// build their own [`hupc_upc::UpcJob`] from this (segment sizing is
/// app-specific), normally through [`RunEnv::upc_config`].
#[derive(Clone, Debug)]
pub struct RunEnv {
    pub machine: MachineSpec,
    pub threads: usize,
    pub nodes_used: usize,
    pub conduit: Conduit,
    /// `None` = the process default (which itself honours
    /// `HUPC_SIM_BACKEND`); the runner swaps the default around the run.
    pub backend: Option<SimBackend>,
    pub fault: Option<FaultPlan>,
}

impl RunEnv {
    /// A small test platform: `nodes` small-test nodes, QDR InfiniBand,
    /// default backend, no faults.
    pub fn small(threads: usize, nodes: usize) -> RunEnv {
        RunEnv {
            machine: MachineSpec::small_test(nodes.max(1)),
            threads,
            nodes_used: nodes,
            conduit: Conduit::ib_qdr(),
            backend: None,
            fault: None,
        }
    }

    pub fn with_backend(mut self, b: SimBackend) -> RunEnv {
        self.backend = Some(b);
        self
    }

    pub fn with_fault(mut self, f: FaultPlan) -> RunEnv {
        self.fault = Some(f);
        self
    }

    /// The standard launch configuration for this environment (see
    /// [`UpcConfig::standard`]).
    pub fn upc_config(&self, segment_words: usize) -> UpcConfig {
        UpcConfig::standard(
            self.machine.clone(),
            self.threads,
            self.nodes_used,
            self.conduit.clone(),
            segment_words,
            self.fault.clone(),
        )
    }
}

/// The outcome of one workload run: the verification verdict, a flat list
/// of summary metrics, the end-of-run virtual time, and (when tracing is
/// compiled in and the runner installed a tracer) the `MetricsRegistry`
/// snapshot as deterministic JSON.
#[derive(Clone, Debug, Default)]
pub struct Verified {
    /// Did the workload's own oracle pass?
    pub passed: bool,
    /// Human-readable oracle detail (what was checked, with numbers).
    pub oracle: String,
    /// Flat `(name, value)` summary metrics, in workload-chosen order.
    pub metrics: Vec<(String, f64)>,
    /// Virtual seconds at the end of the timed section.
    pub end_seconds: f64,
    /// `MetricsRegistry` snapshot JSON (filled by the runner under the
    /// `trace` feature; `None` otherwise).
    pub metrics_json: Option<String>,
}

impl Verified {
    /// Look up a summary metric by name.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }
}

/// A workload failure: bad configuration or a run-time error.
#[derive(Clone, Debug)]
pub enum AppError {
    Param(ParamError),
    /// Unknown workload name (registry lookup failed).
    NoSuchWorkload(String),
    /// The environment cannot host this workload (e.g. thread-count shape).
    Unsupported(String),
    Run(String),
}

impl fmt::Display for AppError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AppError::Param(e) => write!(f, "{e}"),
            AppError::NoSuchWorkload(n) => write!(f, "no such workload: {n}"),
            AppError::Unsupported(s) => write!(f, "unsupported configuration: {s}"),
            AppError::Run(s) => write!(f, "workload failed: {s}"),
        }
    }
}

impl std::error::Error for AppError {}

impl From<ParamError> for AppError {
    fn from(e: ParamError) -> AppError {
        AppError::Param(e)
    }
}

/// One pluggable application. Implementations own their kernel and their
/// oracle; the SDK owns everything around them (registry lookup, backend
/// selection, tracing, report emission).
///
/// The contract:
/// - `run` must be deterministic: same `(env, params)` ⇒ same [`Verified`]
///   (bit-identical floats), on any engine backend.
/// - `run` must consume its params through a [`crate::ParamReader`] and call
///   `finish()`, so unknown keys are rejected.
/// - verification runs inside `run` (untimed where the app distinguishes),
///   and `passed` reflects it; the runner never re-derives oracles.
pub trait Workload: Send + Sync {
    /// Registry key, stable across releases (lowercase, no spaces).
    fn name(&self) -> &'static str;

    /// One-line description for `--list`.
    fn description(&self) -> &'static str;

    /// `(key, default, help)` for every accepted param, for docs/usage.
    fn param_spec(&self) -> Vec<(&'static str, String, &'static str)>;

    /// The environment this workload runs in when the caller has no
    /// opinion (sweeps, smoke tests). Shape constraints live here: e.g.
    /// STREAM wants one node and an even thread count.
    fn default_env(&self) -> RunEnv {
        RunEnv::small(4, 2)
    }

    /// Execute and verify.
    fn run(&self, env: &RunEnv, params: &Params) -> Result<Verified, AppError>;
}
