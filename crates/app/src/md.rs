//! Molecular dynamics with 3-D domain decomposition and halo exchange —
//! the workload PAPERS.md's UPC-MD study evaluates, on our group
//! machinery: boundary-band particles travel to neighbouring subdomains
//! over one-sided puts (or a cast-table memory copy when the neighbour
//! shares a node), and the force loop runs privatized over local +
//! received halo particles.
//!
//! Physics: cut-and-shifted Lennard-Jones in an open (non-periodic) box,
//! velocity-Verlet integration. The system is isolated, so total energy
//! is conserved; the oracle bounds the relative drift of `KE + PE`
//! between the first and last step. Pair visibility is symmetric by
//! construction — a particle is sent to every neighbour whose shared
//! boundary it sits within `rc + skin` of, and `skin` dominates any drift
//! a particle can accumulate over the run — so forces obey Newton's third
//! law across subdomain boundaries and the halo PE half-counts exactly.
//!
//! Determinism: particles are generated from a seeded hash of their
//! global id, halo slots are read in a fixed direction order after a
//! barrier, and every float accumulates in a fixed order — the result is
//! bit-identical across runs and engine backends.

use std::sync::Arc;

use hupc_groups::{GroupLevel, GroupSet};
use hupc_sim::{time, SimCell};
use hupc_upc::{Upc, UpcJob};

use crate::params::Params;
use crate::workload::{AppError, RunEnv, Verified, Workload};

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Factor `p` into a near-cubic `(px, py, pz)` process grid.
fn grid3(p: usize) -> (usize, usize, usize) {
    let mut best = (p, 1, 1);
    let mut best_surface = usize::MAX;
    for px in 1..=p {
        if p % px != 0 {
            continue;
        }
        let q = p / px;
        for py in 1..=q {
            if q % py != 0 {
                continue;
            }
            let pz = q / py;
            let surface = px * py + py * pz + pz * px;
            if surface < best_surface {
                best_surface = surface;
                best = (px, py, pz);
            }
        }
    }
    best
}

/// The 26 halo directions in fixed lexicographic order (slot index order).
fn directions() -> Vec<(i64, i64, i64)> {
    let mut d = Vec::with_capacity(26);
    for dx in -1i64..=1 {
        for dy in -1i64..=1 {
            for dz in -1i64..=1 {
                if (dx, dy, dz) != (0, 0, 0) {
                    d.push((dx, dy, dz));
                }
            }
        }
    }
    d
}

/// One particle: position, velocity, force (all f64 triples).
#[derive(Clone, Copy, Default)]
struct Particle {
    x: [f64; 3],
    v: [f64; 3],
    f: [f64; 3],
}

/// Cut-and-shifted LJ: returns `(force/r², potential)` for squared
/// distance `r2 < rc2`, both continuous at the cutoff.
fn lj(r2: f64, u_shift: f64) -> (f64, f64) {
    let inv2 = 1.0 / r2;
    let sr6 = inv2 * inv2 * inv2;
    let sr12 = sr6 * sr6;
    (24.0 * (2.0 * sr12 - sr6) * inv2, 4.0 * (sr12 - sr6) - u_shift)
}

/// The registered workload.
pub struct MdWorkload;

impl Workload for MdWorkload {
    fn name(&self) -> &'static str {
        "md"
    }

    fn description(&self) -> &'static str {
        "LJ molecular dynamics: 3-D halo exchange, energy-conservation oracle"
    }

    fn param_spec(&self) -> Vec<(&'static str, String, &'static str)> {
        vec![
            ("n_per", "32".into(), "particles per thread"),
            ("steps", "10".into(), "velocity-Verlet steps"),
            ("dt", "0.002".into(), "timestep (LJ units)"),
            ("rc", "2.0".into(), "interaction cutoff"),
            ("skin", "0.5".into(), "halo band margin beyond rc"),
            ("density", "0.4".into(), "particles per unit volume"),
            ("tol", "1e-4".into(), "relative energy-drift pass threshold"),
            ("seed", "23".into(), "initial-state seed"),
        ]
    }

    fn default_env(&self) -> RunEnv {
        // 8 threads factor into a 2×2×2 domain grid.
        RunEnv::small(8, 2)
    }

    fn run(&self, env: &RunEnv, params: &Params) -> Result<Verified, AppError> {
        let mut r = params.reader();
        let n_per = r.usize_or("n_per", 32)?;
        let steps = r.usize_or("steps", 10)?;
        let dt = r.f64_or("dt", 0.002)?;
        let rc = r.f64_or("rc", 2.0)?;
        let skin = r.f64_or("skin", 0.5)?;
        let density = r.f64_or("density", 0.4)?;
        let tol = r.f64_or("tol", 1e-4)?;
        let seed = r.u64_or("seed", 23)?;
        r.finish()?;
        let p = env.threads;
        let (px, py, pz) = grid3(p);
        let cell_l = (n_per as f64 / density).cbrt();
        // Interacting pairs must live in the same or adjacent subdomains,
        // even after a run's worth of drift — that's what `skin` buys.
        if cell_l < rc + skin {
            return Err(AppError::Unsupported(format!(
                "md: subdomain edge {cell_l:.2} must be ≥ rc+skin = {:.2} \
                 (raise n_per or lower density/rc)",
                rc + skin
            )));
        }

        // Halo inbox: one slot per direction, [count, 3·n_per coordinates].
        let slot_words = 1 + 3 * n_per;
        let block = 26 * slot_words;
        let seg = (hupc_upc::SCRATCH_WORDS + block + 256)
            .next_power_of_two()
            .max(1 << 10);
        let job = UpcJob::new(env.upc_config(seg));
        let inbox = job.alloc_shared::<u64>(p * block, block);
        let groups = Arc::new(GroupSet::partition(
            &mut job.kernel(),
            job.runtime(),
            GroupLevel::Node,
        ));
        hupc_coll::CollDomain::install_auto(&job);

        let out: Arc<SimCell<(f64, f64, u64, f64)>> = Arc::new(SimCell::default());
        let out2 = Arc::clone(&out);
        let dirs = directions();

        job.run(move |upc| {
            let me = upc.mythread();
            let (cx, cy, cz) = (me % px, (me / px) % py, me / (px * py));
            let lo = [
                cx as f64 * cell_l,
                cy as f64 * cell_l,
                cz as f64 * cell_l,
            ];
            let hi = [lo[0] + cell_l, lo[1] + cell_l, lo[2] + cell_l];
            let rc2 = rc * rc;
            let u_shift = {
                let sr6 = 1.0 / (rc2 * rc2 * rc2);
                4.0 * (sr6 * sr6 - sr6)
            };
            let band = rc + skin;

            // My neighbours: direction index → rank, for directions whose
            // cell exists (open box, no wrap).
            let neighbor_of = |d: (i64, i64, i64)| -> Option<usize> {
                let nx = cx as i64 + d.0;
                let ny = cy as i64 + d.1;
                let nz = cz as i64 + d.2;
                if (0..px as i64).contains(&nx)
                    && (0..py as i64).contains(&ny)
                    && (0..pz as i64).contains(&nz)
                {
                    Some((nx + px as i64 * (ny + py as i64 * nz)) as usize)
                } else {
                    None
                }
            };

            // Init (untimed): jittered lattice, small hashed velocities.
            let m = (n_per as f64).cbrt().ceil() as usize;
            let spacing = cell_l / m as f64;
            let mut parts: Vec<Particle> = (0..n_per)
                .map(|k| {
                    let gid = (me * n_per + k) as u64;
                    let (ix, iy, iz) = (k % m, (k / m) % m, k / (m * m));
                    let mut part = Particle::default();
                    for (a, i) in [ix, iy, iz].into_iter().enumerate() {
                        let jit = 0.04 * (unit(splitmix(seed ^ (gid * 3 + a as u64))) - 0.5);
                        part.x[a] = lo[a] + (i as f64 + 0.5) * spacing + jit;
                        part.v[a] =
                            0.1 * (unit(splitmix(seed ^ (gid * 3 + a as u64) ^ 0xABCD)) - 0.5);
                    }
                    part
                })
                .collect();
            upc.staged_barrier();
            let t0 = upc.now();

            // One halo exchange + force/PE computation. Returns local PE
            // (halo pairs half-counted) and the pair count it evaluated.
            let exchange_and_force = |upc: &Upc<'_>, parts: &mut Vec<Particle>| -> (f64, u64) {
                // Publish boundary bands to every existing neighbour.
                let mut handles = Vec::new();
                for (di, &d) in dirs.iter().enumerate() {
                    let Some(nb) = neighbor_of(d) else { continue };
                    let mut sent: Vec<u64> = Vec::new();
                    for part in parts.iter() {
                        let within = |a: usize| match [d.0, d.1, d.2][a] {
                            -1 => part.x[a] < lo[a] + band,
                            1 => part.x[a] > hi[a] - band,
                            _ => true,
                        };
                        if within(0) && within(1) && within(2) {
                            sent.extend(part.x.iter().map(|v| v.to_bits()));
                        }
                    }
                    let slot = di * slot_words;
                    let words = 1 + sent.len();
                    let g = groups.group_of(me);
                    if g.rank_of(nb).is_some() && g.has_cast_table() {
                        // Privatized path: straight memory copy through the
                        // group cast table.
                        g.with_member_words(upc, &inbox, nb, |w| {
                            w[slot] = (sent.len() / 3) as u64;
                            w[slot + 1..slot + words].copy_from_slice(&sent);
                        });
                        upc.note_socket_traffic(upc.segment_home(nb), 8 * words as u64);
                    } else {
                        let off = inbox.word_offset() + slot;
                        let ((), h) = upc.memput_nb_with(nb, off, words, |w| {
                            w[0] = (sent.len() / 3) as u64;
                            w[1..].copy_from_slice(&sent);
                        });
                        handles.push(h);
                    }
                }
                for h in handles {
                    upc.wait_sync(h);
                }
                upc.barrier();

                // Drain halo slots in fixed direction order: slot `di`
                // holds particles from the neighbour at `-d`.
                let mut halo: Vec<[f64; 3]> = Vec::new();
                for (di, &d) in dirs.iter().enumerate() {
                    if neighbor_of((-d.0, -d.1, -d.2)).is_none() {
                        continue;
                    }
                    let slot_off = inbox.word_offset() + di * slot_words;
                    let seg = upc.gasnet().segment(me);
                    let count = seg.read_word(slot_off) as usize;
                    let mut w = vec![0u64; count * 3];
                    seg.read(slot_off + 1, &mut w);
                    for t in w.chunks_exact(3) {
                        halo.push([
                            f64::from_bits(t[0]),
                            f64::from_bits(t[1]),
                            f64::from_bits(t[2]),
                        ]);
                    }
                }

                // Force loop, privatized: local-local pairs in full,
                // local-halo pairs with half-counted PE.
                for part in parts.iter_mut() {
                    part.f = [0.0; 3];
                }
                let mut pe = 0.0f64;
                let mut pairs = 0u64;
                for i in 0..parts.len() {
                    for j in i + 1..parts.len() {
                        let mut dr = [0.0; 3];
                        let mut r2 = 0.0;
                        for (a, d) in dr.iter_mut().enumerate() {
                            *d = parts[i].x[a] - parts[j].x[a];
                            r2 += *d * *d;
                        }
                        pairs += 1;
                        if r2 < rc2 {
                            let (fr, u) = lj(r2, u_shift);
                            pe += u;
                            for (a, &d) in dr.iter().enumerate() {
                                parts[i].f[a] += fr * d;
                                parts[j].f[a] -= fr * d;
                            }
                        }
                    }
                    for h in &halo {
                        let mut dr = [0.0; 3];
                        let mut r2 = 0.0;
                        for (a, d) in dr.iter_mut().enumerate() {
                            *d = parts[i].x[a] - h[a];
                            r2 += *d * *d;
                        }
                        pairs += 1;
                        if r2 < rc2 {
                            let (fr, u) = lj(r2, u_shift);
                            pe += 0.5 * u; // the neighbour counts the other half
                            for (a, &d) in dr.iter().enumerate() {
                                parts[i].f[a] += fr * d;
                            }
                        }
                    }
                }
                // ~40 ns per evaluated pair + streaming the halo coordinates.
                upc.compute(time::ns(40 * pairs));
                upc.note_socket_traffic(upc.segment_home(me), halo.len() as u64 * 24);
                (pe, pairs)
            };

            let ke = |parts: &[Particle]| -> f64 {
                parts
                    .iter()
                    .map(|p| 0.5 * (p.v[0] * p.v[0] + p.v[1] * p.v[1] + p.v[2] * p.v[2]))
                    .sum()
            };

            // Forces + energy at t = 0.
            let (pe0, _) = exchange_and_force(&upc, &mut parts);
            let mut e = [ke(&parts) + pe0];
            upc.allreduce_sum_f64_vec(&mut e);
            let e0 = e[0];

            // Velocity Verlet.
            let mut total_pairs = 0u64;
            let mut pe_last = pe0;
            for _ in 0..steps {
                for part in parts.iter_mut() {
                    for a in 0..3 {
                        part.v[a] += 0.5 * dt * part.f[a];
                        part.x[a] += dt * part.v[a];
                    }
                }
                upc.compute(time::ns(6 * n_per as u64));
                let (pe, pairs) = exchange_and_force(&upc, &mut parts);
                total_pairs += pairs;
                pe_last = pe;
                for part in parts.iter_mut() {
                    for a in 0..3 {
                        part.v[a] += 0.5 * dt * part.f[a];
                    }
                }
                upc.compute(time::ns(3 * n_per as u64));
            }
            let mut e = [ke(&parts) + pe_last];
            upc.allreduce_sum_f64_vec(&mut e);
            let e_final = e[0];
            let dt_v = upc.now() - t0;
            let pairs_total = upc.allreduce_sum_u64(total_pairs);
            if me == 0 {
                out2.set((e0, e_final, pairs_total, time::as_secs_f64(dt_v)));
            }
        });

        let (e0, e_final, pairs, secs) = out.get();
        let drift = (e_final - e0).abs() / e0.abs().max(1.0);
        let passed = drift < tol && e0.is_finite() && e_final.is_finite();
        Ok(Verified {
            passed,
            oracle: format!(
                "energy E0 = {e0:.6}, E({steps}) = {e_final:.6}, \
                 relative drift {drift:.3e} (tol {tol:.1e})"
            ),
            metrics: vec![
                ("e0".into(), e0),
                ("e_final".into(), e_final),
                ("energy_drift".into(), drift),
                ("pairs".into(), pairs as f64),
                ("pairs_per_sec".into(), pairs as f64 / secs.max(1e-12)),
            ],
            end_seconds: secs,
            metrics_json: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn near_cubic_grids() {
        assert_eq!(grid3(8), (2, 2, 2));
        assert_eq!(grid3(1), (1, 1, 1));
        for p in [2, 4, 6, 12] {
            let (a, b, c) = grid3(p);
            assert_eq!(a * b * c, p);
            // Near-cubic: no factor more than p/2 away unless forced.
            assert!(a.max(b).max(c) <= p / 2 || p <= 3, "{p} -> {a}x{b}x{c}");
        }
    }

    #[test]
    fn md_conserves_energy() {
        let v = MdWorkload
            .run(&MdWorkload.default_env(), &Params::empty())
            .unwrap();
        assert!(v.passed, "{}", v.oracle);
        assert!(v.metric("energy_drift").unwrap() < 1e-4);
        assert!(v.metric("pairs").unwrap() > 0.0);
    }

    #[test]
    fn md_is_deterministic_across_runs() {
        let env = MdWorkload.default_env();
        let a = MdWorkload.run(&env, &Params::empty()).unwrap();
        let b = MdWorkload.run(&env, &Params::empty()).unwrap();
        assert_eq!(
            a.metric("e_final").unwrap().to_bits(),
            b.metric("e_final").unwrap().to_bits()
        );
        assert_eq!(a.end_seconds.to_bits(), b.end_seconds.to_bits());
    }
}
