//! The generic runner: one place that owns engine-backend selection,
//! tracing, and report shaping for every workload.

use std::sync::Mutex;

use hupc_sim::{set_sim_backend_default, SimBackend};

use crate::params::Params;
use crate::registry::Registry;
use crate::workload::{AppError, RunEnv, Verified, Workload};

/// Stable label for a backend choice (report/JSON key material).
pub fn backend_label(b: Option<SimBackend>) -> String {
    match b {
        None => "default".to_string(),
        Some(SimBackend::Sequential) => "seq".to_string(),
        Some(SimBackend::Parallel(n)) => format!("par{n}"),
    }
}

/// One workload run shaped for reporting.
#[derive(Clone, Debug)]
pub struct RunReport {
    pub workload: String,
    pub backend: String,
    /// Caller-chosen fault-plan label ("none" when the env has no plan).
    pub fault: String,
    pub verified: Verified,
}

impl RunReport {
    /// One deterministic JSON object (sorted structure, metrics in
    /// workload order). Floats print via `{:?}` so they round-trip.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        s.push_str(&format!("\"workload\":\"{}\",", self.workload));
        s.push_str(&format!("\"backend\":\"{}\",", self.backend));
        s.push_str(&format!("\"fault\":\"{}\",", self.fault));
        s.push_str(&format!("\"passed\":{},", self.verified.passed));
        s.push_str(&format!(
            "\"oracle\":\"{}\",",
            self.verified.oracle.replace('\\', "\\\\").replace('"', "\\\"")
        ));
        s.push_str(&format!("\"end_seconds\":{:?},", self.verified.end_seconds));
        s.push_str("\"metrics\":{");
        for (i, (k, v)) in self.verified.metrics.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{k}\":{v:?}"));
        }
        s.push('}');
        if let Some(mj) = &self.verified.metrics_json {
            s.push_str(&format!(",\"trace_metrics\":{mj}"));
        }
        s.push('}');
        s
    }
}

/// Serializes swaps of the process-wide backend default so concurrent
/// runner invocations (parallel tests) never observe each other's choice.
/// Runs with `backend == None` skip the lock entirely — they use whatever
/// default is in effect, which is also what direct (non-SDK) drivers see.
static BACKEND_SWAP: Mutex<()> = Mutex::new(());

/// Run `f` with the process-default engine backend forced to `b`.
pub fn with_sim_backend<T>(b: Option<SimBackend>, f: impl FnOnce() -> T) -> T {
    match b {
        None => f(),
        Some(b) => {
            let _g = BACKEND_SWAP
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            set_sim_backend_default(Some(b));
            let r = f();
            set_sim_backend_default(None);
            r
        }
    }
}

/// Run one workload under the SDK: backend swap, tracer install (under the
/// `trace` feature), oracle evaluation inside the workload. The returned
/// [`Verified`] carries the `MetricsRegistry` snapshot when tracing ran.
pub fn run_workload(
    w: &dyn Workload,
    env: &RunEnv,
    params: &Params,
) -> Result<Verified, AppError> {
    with_sim_backend(env.backend, || {
        #[cfg(feature = "trace")]
        {
            use std::sync::Arc;
            let t = Arc::new(hupc_trace::Tracer::new(hupc_trace::TraceLevel::Counters));
            let guard = t.install();
            let mut v = w.run(env, params)?;
            drop(guard);
            if v.metrics_json.is_none() {
                v.metrics_json = Some(t.metrics().snapshot().to_json());
            }
            Ok(v)
        }
        #[cfg(not(feature = "trace"))]
        w.run(env, params)
    })
}

/// Registry-keyed entry point: look up `name`, run it in `env`, shape a
/// [`RunReport`]. `fault_label` names the env's fault plan in the report.
pub fn run_by_name(
    reg: &Registry,
    name: &str,
    env: &RunEnv,
    params: &Params,
    fault_label: &str,
) -> Result<RunReport, AppError> {
    let w = reg
        .get(name)
        .ok_or_else(|| AppError::NoSuchWorkload(name.to_string()))?;
    let verified = run_workload(w.as_ref(), env, params)?;
    Ok(RunReport {
        workload: name.to_string(),
        backend: backend_label(env.backend),
        fault: fault_label.to_string(),
        verified,
    })
}
