//! `hupc-app` — the workload plugin SDK.
//!
//! The thesis' claim is that hierarchical-parallelism machinery pays off
//! *across applications*; this crate makes "across applications" cheap. A
//! workload is anything implementing [`Workload`]: environment
//! ([`RunEnv`]: machine + layout + conduit + engine backend + fault plan)
//! and typed `key=value` config ([`Params`]) in, a [`Verified`] result
//! (pass/fail oracle, summary metrics, end virtual time, metrics snapshot)
//! out. The [`Registry`] names every app; [`runner::run_workload`] owns
//! backend selection, tracing, and report shaping, so an app is only its
//! kernel plus its oracle.
//!
//! Built-ins: the four migrated thesis apps (`uts`, `ft`, `gups`,
//! `stream` — kernels stay in their own crates, adapters live in
//! [`adapters`]) and the breadth wave (`md` halo-exchange molecular
//! dynamics, `cg` NAS conjugate gradient, `stencil2d` Jacobi heat).
//!
//! # Adding a workload (~50 lines)
//!
//! ```
//! use hupc_app::{AppError, Params, RunEnv, Verified, Workload};
//!
//! struct Pi;
//!
//! impl Workload for Pi {
//!     fn name(&self) -> &'static str { "pi" }
//!     fn description(&self) -> &'static str { "leibniz pi, allreduced" }
//!     fn param_spec(&self) -> Vec<(&'static str, String, &'static str)> {
//!         vec![("terms", "1000".into(), "series terms")]
//!     }
//!     fn run(&self, env: &RunEnv, p: &Params) -> Result<Verified, AppError> {
//!         let mut r = p.reader();
//!         let terms = r.usize_or("terms", 1000)?;
//!         r.finish()?;
//!         let job = hupc_upc::UpcJob::new(env.upc_config(1 << 10));
//!         let out = std::sync::Arc::new(hupc_sim::SimCell::new((0.0, 0.0)));
//!         let out2 = std::sync::Arc::clone(&out);
//!         job.run(move |upc| {
//!             let (me, p) = (upc.mythread(), upc.threads());
//!             let mine: f64 = (me..terms).step_by(p)
//!                 .map(|k| if k % 2 == 0 { 1.0 } else { -1.0 } / (2 * k + 1) as f64)
//!                 .sum();
//!             let pi = 4.0 * upc.allreduce_sum_f64(mine);
//!             if me == 0 {
//!                 out2.with_mut(|o| *o = (pi, hupc_sim::time::as_secs_f64(upc.now())));
//!             }
//!         });
//!         let (pi, secs) = out.with(|o| *o);
//!         Ok(Verified {
//!             passed: (pi - std::f64::consts::PI).abs() < 1e-2,
//!             oracle: format!("pi ≈ {pi}"),
//!             metrics: vec![("pi".into(), pi)],
//!             end_seconds: secs,
//!             metrics_json: None,
//!         })
//!     }
//! }
//!
//! let v = hupc_app::run_workload(&Pi, &RunEnv::small(4, 2), &Params::empty()).unwrap();
//! assert!(v.passed);
//! ```

pub mod adapters;
pub mod cg;
pub mod md;
pub mod params;
pub mod registry;
pub mod runner;
pub mod stencil2d;
pub mod workload;

pub use params::{ParamError, ParamReader, Params};
pub use registry::{register_builtin, Registry};
pub use runner::{backend_label, run_by_name, run_workload, with_sim_backend, RunReport};
pub use workload::{AppError, RunEnv, Verified, Workload};
