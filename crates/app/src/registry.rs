//! The workload registry: an explicit list, no link-time magic.
//!
//! Registration is a plain function call — [`register_builtin`] names every
//! built-in app — so the full set is greppable and the no-std-linker tricks
//! (`inventory`-style distributed slices) stay out of the build.

use std::sync::{Arc, OnceLock};

use crate::workload::Workload;

/// A named collection of workloads.
#[derive(Default)]
pub struct Registry {
    items: Vec<Arc<dyn Workload>>,
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Add a workload. Panics on a duplicate name — two apps answering to
    /// the same key is a programming error, not a runtime condition.
    pub fn register(&mut self, w: Arc<dyn Workload>) {
        assert!(
            self.get(w.name()).is_none(),
            "duplicate workload name {:?}",
            w.name()
        );
        self.items.push(w);
    }

    pub fn get(&self, name: &str) -> Option<Arc<dyn Workload>> {
        self.items.iter().find(|w| w.name() == name).cloned()
    }

    /// Registration order (the sweep order of `all_experiments`).
    pub fn names(&self) -> Vec<&'static str> {
        self.items.iter().map(|w| w.name()).collect()
    }

    pub fn iter(&self) -> impl Iterator<Item = &Arc<dyn Workload>> {
        self.items.iter()
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// A fresh registry holding every built-in workload.
    pub fn builtin() -> Registry {
        let mut r = Registry::new();
        register_builtin(&mut r);
        r
    }

    /// The process-global registry (built-ins, lazily constructed).
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::builtin)
    }
}

/// Every built-in workload, in sweep order: the four migrated thesis apps,
/// then the breadth wave.
pub fn register_builtin(reg: &mut Registry) {
    reg.register(Arc::new(crate::adapters::UtsWorkload));
    reg.register(Arc::new(crate::adapters::FtWorkload));
    reg.register(Arc::new(crate::adapters::GupsWorkload));
    reg.register(Arc::new(crate::adapters::StreamWorkload));
    reg.register(Arc::new(crate::md::MdWorkload));
    reg.register(Arc::new(crate::cg::CgWorkload));
    reg.register(Arc::new(crate::stencil2d::Stencil2dWorkload));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_names_are_stable() {
        let r = Registry::builtin();
        assert_eq!(
            r.names(),
            vec!["uts", "ft", "gups", "stream", "md", "cg", "stencil2d"]
        );
        assert!(r.get("uts").is_some());
        assert!(r.get("nope").is_none());
        assert_eq!(Registry::global().len(), r.len());
    }

    #[test]
    #[should_panic(expected = "duplicate workload name")]
    fn duplicate_registration_panics() {
        let mut r = Registry::builtin();
        r.register(Arc::new(crate::adapters::UtsWorkload));
    }
}
