//! NAS CG (conjugate gradient): sparse symmetric mat-vec with allreduce
//! dot products over the hierarchical collective layer.
//!
//! The matrix is generated, never stored globally: an undirected edge
//! `(i, j)` exists iff a symmetric hash of the unordered pair clears a
//! density threshold, and the diagonal is `1 + Σ|a_ij|`, so the matrix is
//! symmetric and strictly diagonally dominant (hence SPD and CG
//! converges). Each thread owns a block of rows; every iteration
//! allgathers the direction vector and allreduces the two dot products —
//! exactly the collective mix NAS CG stresses.

use std::sync::Arc;

use hupc_sim::{time, SimCell};
use hupc_upc::UpcJob;

use crate::params::Params;
use crate::workload::{AppError, RunEnv, Verified, Workload};

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Off-diagonal value of the unordered pair `(i, j)`; `None` when the edge
/// does not exist. Symmetric by construction: both orders hash the same.
fn edge(seed: u64, n: usize, degree: usize, i: usize, j: usize) -> Option<f64> {
    debug_assert_ne!(i, j);
    let (a, b) = (i.min(j) as u64, i.max(j) as u64);
    let h = splitmix(seed ^ (a * n as u64 + b).wrapping_mul(0x9E3779B97F4A7C15));
    // Edge probability degree/n ⇒ expected `degree` off-diagonals per row.
    if h % n as u64 >= degree as u64 {
        return None;
    }
    Some(0.1 + 0.4 * unit(splitmix(h)))
}

/// Row `i` of the matrix as `(columns, values, diagonal)`.
fn row(seed: u64, n: usize, degree: usize, i: usize) -> (Vec<u32>, Vec<f64>, f64) {
    let mut cols = Vec::new();
    let mut vals = Vec::new();
    let mut sum = 0.0;
    for j in 0..n {
        if j == i {
            continue;
        }
        if let Some(v) = edge(seed, n, degree, i, j) {
            cols.push(j as u32);
            vals.push(v);
            sum += v;
        }
    }
    (cols, vals, 1.0 + sum)
}

/// The registered workload.
pub struct CgWorkload;

impl Workload for CgWorkload {
    fn name(&self) -> &'static str {
        "cg"
    }

    fn description(&self) -> &'static str {
        "NAS CG: sparse SPD solve, allgather + allreduce per iteration"
    }

    fn param_spec(&self) -> Vec<(&'static str, String, &'static str)> {
        vec![
            ("n", "256".into(), "matrix order (divisible by threads)"),
            ("degree", "8".into(), "expected off-diagonals per row"),
            ("iters", "25".into(), "CG iterations"),
            ("seed", "17".into(), "matrix seed"),
            ("tol", "1e-8".into(), "relative-residual pass threshold"),
        ]
    }

    fn run(&self, env: &RunEnv, params: &Params) -> Result<Verified, AppError> {
        let mut r = params.reader();
        let n = r.usize_or("n", 256)?;
        let degree = r.usize_or("degree", 8)?;
        let iters = r.usize_or("iters", 25)?;
        let seed = r.u64_or("seed", 17)?;
        let tol = r.f64_or("tol", 1e-8)?;
        r.finish()?;
        let p = env.threads;
        if n % p != 0 {
            return Err(AppError::Unsupported(format!(
                "cg: order {n} must divide evenly over {p} threads"
            )));
        }
        let rows_per = n / p;

        let job = UpcJob::new(env.upc_config(1 << 12));
        hupc_coll::CollDomain::install_auto(&job);

        let out: Arc<SimCell<(f64, f64, u64, f64)>> = Arc::new(SimCell::default());
        let out2 = Arc::clone(&out);

        job.run(move |upc| {
            let me = upc.mythread();
            let lo = me * rows_per;
            // Build my rows (untimed setup — generation is not the kernel).
            let my_rows: Vec<(Vec<u32>, Vec<f64>, f64)> =
                (lo..lo + rows_per).map(|i| row(seed, n, degree, i)).collect();
            let nnz_local: u64 = my_rows.iter().map(|(c, _, _)| c.len() as u64 + 1).sum();
            upc.barrier();
            let t0 = upc.now();

            // CG on A x = b with b = 1: my blocks of x, r, d are private;
            // the direction vector is allgathered for the local mat-vec.
            let b = vec![1.0f64; rows_per];
            let mut x = vec![0.0f64; rows_per];
            let mut res = b.clone(); // r = b - A·0
            let mut d = res.clone();
            let mut d_full = vec![0u64; n];
            let dot = |a: &[f64], b: &[f64]| -> f64 {
                a.iter().zip(b).map(|(x, y)| x * y).sum()
            };
            let mut rs_old = {
                let mut v = [dot(&res, &res)];
                upc.allreduce_sum_f64_vec(&mut v);
                v[0]
            };
            for _ in 0..iters {
                let mine: Vec<u64> = d.iter().map(|v| v.to_bits()).collect();
                upc.allgather_words(&mine, &mut d_full);
                // q = A d over my rows; CPU charge ≈ 4 ns per nonzero FMA.
                let q: Vec<f64> = my_rows
                    .iter()
                    .enumerate()
                    .map(|(k, (cols, vals, diag))| {
                        let mut acc = diag * f64::from_bits(d_full[lo + k]);
                        for (c, v) in cols.iter().zip(vals) {
                            acc += v * f64::from_bits(d_full[*c as usize]);
                        }
                        acc
                    })
                    .collect();
                upc.compute(time::ns(4 * nnz_local));
                let mut dq = [dot(&d, &q)];
                upc.allreduce_sum_f64_vec(&mut dq);
                let alpha = rs_old / dq[0];
                for k in 0..rows_per {
                    x[k] += alpha * d[k];
                    res[k] -= alpha * q[k];
                }
                let mut rs = [dot(&res, &res)];
                upc.allreduce_sum_f64_vec(&mut rs);
                let beta = rs[0] / rs_old;
                rs_old = rs[0];
                for k in 0..rows_per {
                    d[k] = res[k] + beta * d[k];
                }
            }
            let dt = upc.now() - t0;

            // Untimed verification: the *true* residual ‖b − A x‖ from the
            // final iterate (guards the recurrence), plus the recurrence
            // residual CG itself tracked.
            let xm: Vec<u64> = x.iter().map(|v| v.to_bits()).collect();
            let mut x_full = vec![0u64; n];
            upc.allgather_words(&xm, &mut x_full);
            let mut true_sq = 0.0f64;
            for (k, (cols, vals, diag)) in my_rows.iter().enumerate() {
                let mut ax = diag * f64::from_bits(x_full[lo + k]);
                for (c, v) in cols.iter().zip(vals) {
                    ax += v * f64::from_bits(x_full[*c as usize]);
                }
                true_sq += (b[k] - ax) * (b[k] - ax);
            }
            let mut sums = [true_sq];
            upc.allreduce_sum_f64_vec(&mut sums);
            let nnz = upc.allreduce_sum_u64(nnz_local);
            if me == 0 {
                let b_norm = (n as f64).sqrt();
                out2.set((
                    sums[0].sqrt() / b_norm,
                    rs_old.sqrt() / b_norm,
                    nnz,
                    time::as_secs_f64(dt),
                ));
            }
        });

        let (true_rel, rec_rel, nnz, secs) = out.get();
        let passed = true_rel < tol && rec_rel < tol;
        Ok(Verified {
            passed,
            oracle: format!(
                "relative residual: true {true_rel:.3e}, recurrence {rec_rel:.3e} \
                 (tol {tol:.1e}) after {iters} iterations"
            ),
            metrics: vec![
                ("true_rel_residual".into(), true_rel),
                ("rec_rel_residual".into(), rec_rel),
                ("nnz".into(), nnz as f64),
                ("mflops".into(), 2.0 * nnz as f64 * iters as f64 / secs.max(1e-12) / 1e6),
            ],
            end_seconds: secs,
            metrics_json: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cg_converges_on_the_default_problem() {
        let v = CgWorkload
            .run(&RunEnv::small(4, 2), &Params::empty())
            .unwrap();
        assert!(v.passed, "{}", v.oracle);
        assert!(v.metric("true_rel_residual").unwrap() < 1e-8);
        assert!(v.metric("nnz").unwrap() > 256.0); // off-diagonals exist
    }

    #[test]
    fn cg_residual_is_deterministic() {
        let env = RunEnv::small(4, 2);
        let a = CgWorkload.run(&env, &Params::empty()).unwrap();
        let b = CgWorkload.run(&env, &Params::empty()).unwrap();
        assert_eq!(
            a.metric("true_rel_residual").unwrap().to_bits(),
            b.metric("true_rel_residual").unwrap().to_bits()
        );
        assert_eq!(a.end_seconds.to_bits(), b.end_seconds.to_bits());
    }
}
