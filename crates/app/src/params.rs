//! Typed per-app configuration parsed from `key=value` strings.
//!
//! A workload receives its knobs as an opaque [`Params`] map and reads them
//! through a [`ParamReader`], which tracks every key it was asked about.
//! [`ParamReader::finish`] then rejects any key the workload never consumed,
//! so a typo'd `--param` fails loudly instead of silently running defaults.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A configuration error: malformed input, a bad value, or unknown keys.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParamError {
    /// An input string was not of the form `key=value`.
    Malformed(String),
    /// The same key appeared twice.
    Duplicate(String),
    /// A value failed to parse as the requested type.
    Invalid {
        key: String,
        value: String,
        want: &'static str,
    },
    /// Keys present in the map that the workload never consumed.
    Unknown(Vec<String>),
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamError::Malformed(s) => write!(f, "malformed param {s:?} (want key=value)"),
            ParamError::Duplicate(k) => write!(f, "duplicate param key {k:?}"),
            ParamError::Invalid { key, value, want } => {
                write!(f, "param {key}={value:?}: expected {want}")
            }
            ParamError::Unknown(keys) => write!(f, "unknown param keys: {}", keys.join(", ")),
        }
    }
}

impl std::error::Error for ParamError {}

/// An ordered `key=value` map. Order-insensitive, round-trippable
/// ([`Params::to_pairs`] re-emits sorted `key=value` strings).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Params {
    map: BTreeMap<String, String>,
}

impl Params {
    /// No parameters: every workload runs on its defaults.
    pub fn empty() -> Params {
        Params::default()
    }

    /// Parse a list of `key=value` strings.
    pub fn parse<S: AsRef<str>>(pairs: &[S]) -> Result<Params, ParamError> {
        let mut map = BTreeMap::new();
        for p in pairs {
            let p = p.as_ref();
            let (k, v) = p
                .split_once('=')
                .ok_or_else(|| ParamError::Malformed(p.to_string()))?;
            let k = k.trim();
            let v = v.trim();
            if k.is_empty() {
                return Err(ParamError::Malformed(p.to_string()));
            }
            if map.insert(k.to_string(), v.to_string()).is_some() {
                return Err(ParamError::Duplicate(k.to_string()));
            }
        }
        Ok(Params { map })
    }

    /// Insert / overwrite one key (builder-style, mostly for tests).
    pub fn set(mut self, key: &str, value: impl fmt::Display) -> Params {
        self.map.insert(key.to_string(), value.to_string());
        self
    }

    /// Raw lookup without consumption tracking.
    pub fn get_raw(&self, key: &str) -> Option<&str> {
        self.map.get(key).map(String::as_str)
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Re-emit as sorted `key=value` strings (parse ∘ to_pairs = identity).
    pub fn to_pairs(&self) -> Vec<String> {
        self.map.iter().map(|(k, v)| format!("{k}={v}")).collect()
    }

    /// Start a tracked read of this map.
    pub fn reader(&self) -> ParamReader<'_> {
        ParamReader {
            params: self,
            consumed: BTreeSet::new(),
        }
    }
}

/// Tracked, typed access to a [`Params`] map.
pub struct ParamReader<'a> {
    params: &'a Params,
    consumed: BTreeSet<String>,
}

impl<'a> ParamReader<'a> {
    fn raw(&mut self, key: &str) -> Option<&'a str> {
        self.consumed.insert(key.to_string());
        self.params.map.get(key).map(String::as_str)
    }

    /// String value, or `default` when absent.
    pub fn str_or(&mut self, key: &str, default: &str) -> String {
        self.raw(key).unwrap_or(default).to_string()
    }

    fn parse_or<T: std::str::FromStr>(
        &mut self,
        key: &str,
        default: T,
        want: &'static str,
    ) -> Result<T, ParamError> {
        match self.raw(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ParamError::Invalid {
                key: key.to_string(),
                value: v.to_string(),
                want,
            }),
        }
    }

    pub fn usize_or(&mut self, key: &str, default: usize) -> Result<usize, ParamError> {
        self.parse_or(key, default, "unsigned integer")
    }

    pub fn u64_or(&mut self, key: &str, default: u64) -> Result<u64, ParamError> {
        self.parse_or(key, default, "unsigned integer")
    }

    pub fn u32_or(&mut self, key: &str, default: u32) -> Result<u32, ParamError> {
        self.parse_or(key, default, "unsigned integer")
    }

    pub fn f64_or(&mut self, key: &str, default: f64) -> Result<f64, ParamError> {
        self.parse_or(key, default, "number")
    }

    pub fn bool_or(&mut self, key: &str, default: bool) -> Result<bool, ParamError> {
        match self.raw(key) {
            None => Ok(default),
            Some("true") | Some("1") | Some("yes") => Ok(true),
            Some("false") | Some("0") | Some("no") => Ok(false),
            Some(v) => Err(ParamError::Invalid {
                key: key.to_string(),
                value: v.to_string(),
                want: "bool (true/false/1/0/yes/no)",
            }),
        }
    }

    /// One of a fixed set of names; returns the index into `choices`.
    pub fn choice_or(
        &mut self,
        key: &str,
        choices: &[&'static str],
        default: &'static str,
    ) -> Result<&'static str, ParamError> {
        debug_assert!(choices.contains(&default));
        match self.raw(key) {
            None => Ok(default),
            Some(v) => choices
                .iter()
                .find(|c| **c == v)
                .copied()
                .ok_or_else(|| ParamError::Invalid {
                    key: key.to_string(),
                    value: v.to_string(),
                    want: "one of the documented choices",
                }),
        }
    }

    /// Reject any key never consumed by the workload.
    pub fn finish(self) -> Result<(), ParamError> {
        let unknown: Vec<String> = self
            .params
            .map
            .keys()
            .filter(|k| !self.consumed.contains(*k))
            .cloned()
            .collect();
        if unknown.is_empty() {
            Ok(())
        } else {
            Err(ParamError::Unknown(unknown))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_sorted() {
        let p = Params::parse(&["b=2", "a=1", "c=x y"]).unwrap();
        assert_eq!(p.to_pairs(), vec!["a=1", "b=2", "c=x y"]);
        let q = Params::parse(&p.to_pairs()).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn malformed_and_duplicates_rejected() {
        assert!(matches!(
            Params::parse(&["noequals"]),
            Err(ParamError::Malformed(_))
        ));
        assert!(matches!(
            Params::parse(&["=v"]),
            Err(ParamError::Malformed(_))
        ));
        assert!(matches!(
            Params::parse(&["a=1", "a=2"]),
            Err(ParamError::Duplicate(_))
        ));
    }

    #[test]
    fn unknown_keys_rejected_consumed_keys_pass() {
        let p = Params::parse(&["known=1", "typo=2"]).unwrap();
        let mut r = p.reader();
        assert_eq!(r.usize_or("known", 0).unwrap(), 1);
        match r.finish() {
            Err(ParamError::Unknown(keys)) => assert_eq!(keys, vec!["typo"]),
            other => panic!("expected Unknown, got {other:?}"),
        }
        // Consuming everything passes, even keys read at their default.
        let mut r = p.reader();
        let _ = r.usize_or("known", 0).unwrap();
        let _ = r.usize_or("typo", 0).unwrap();
        r.finish().unwrap();
    }

    #[test]
    fn typed_getters_and_defaults() {
        let p = Params::parse(&["n=64", "f=1.5", "flag=yes", "mode=fast"]).unwrap();
        let mut r = p.reader();
        assert_eq!(r.usize_or("n", 1).unwrap(), 64);
        assert_eq!(r.f64_or("f", 0.0).unwrap(), 1.5);
        assert!(r.bool_or("flag", false).unwrap());
        assert_eq!(r.choice_or("mode", &["slow", "fast"], "slow").unwrap(), "fast");
        assert_eq!(r.usize_or("absent", 7).unwrap(), 7);
        r.finish().unwrap();
        // Bad values are typed errors.
        let p = Params::parse(&["n=abc"]).unwrap();
        let mut r = p.reader();
        assert!(matches!(
            r.usize_or("n", 1),
            Err(ParamError::Invalid { .. })
        ));
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// parse ∘ to_pairs is the identity on arbitrary key/value sets,
        /// regardless of insertion order.
        #[test]
        fn parse_to_pairs_is_identity(vals in proptest::collection::vec(0u64..1_000_000, 0..10)) {
            let mut pairs = Vec::new();
            let mut keys = std::collections::BTreeSet::new();
            for v in &vals {
                if keys.insert(v % 37) {
                    pairs.push(format!("k{}={v}", v % 37));
                }
            }
            let p = Params::parse(&pairs).unwrap();
            prop_assert_eq!(p.len(), keys.len());
            let q = Params::parse(&p.to_pairs()).unwrap();
            prop_assert_eq!(&p, &q);
            prop_assert_eq!(p.to_pairs(), q.to_pairs());
        }

        /// A reader that consumes every key but one reports exactly that key
        /// as unknown; consuming all of them finishes clean.
        #[test]
        fn finish_flags_exactly_the_unconsumed_keys(
            vals in proptest::collection::vec(0u64..1_000_000, 1..10),
            pick in 0u64..1_000_000,
        ) {
            let mut keys = std::collections::BTreeSet::new();
            let pairs: Vec<String> = vals
                .iter()
                .filter(|v| keys.insert(*v % 37))
                .map(|v| format!("k{}={v}", v % 37))
                .collect();
            let p = Params::parse(&pairs).unwrap();
            let keys: Vec<u64> = keys.into_iter().collect();
            let skip = (pick % keys.len() as u64) as usize;

            let mut r = p.reader();
            for (i, k) in keys.iter().enumerate() {
                if i != skip {
                    let _ = r.u64_or(&format!("k{k}"), 0).unwrap();
                }
            }
            match r.finish() {
                Err(ParamError::Unknown(u)) => {
                    prop_assert_eq!(u, vec![format!("k{}", keys[skip])]);
                }
                other => panic!("expected Unknown, got {other:?}"),
            }

            let mut r = p.reader();
            for k in &keys {
                let _ = r.u64_or(&format!("k{k}"), 0).unwrap();
            }
            r.finish().unwrap();
        }
    }
}
