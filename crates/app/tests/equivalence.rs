//! Migration-safety pins: each adapter must produce results bit-identical
//! to the direct (pre-SDK) driver invoked with the same configuration, and
//! the new apps must be deterministic across engine backends.

use hupc_app::adapters::{
    ft_config, gups_config, stream_config, uts_config, FtWorkload, GupsWorkload, StreamWorkload,
    UtsWorkload,
};
use hupc_app::cg::CgWorkload;
use hupc_app::md::MdWorkload;
use hupc_app::{run_workload, Params, Workload};
use hupc_sim::SimBackend;

fn bits(v: f64) -> u64 {
    v.to_bits()
}

#[test]
fn uts_adapter_matches_direct_driver() {
    let w = UtsWorkload;
    let env = w.default_env();
    let params = Params::empty();
    let direct = hupc_uts::run_uts(uts_config(&env, &params).unwrap());
    let v = run_workload(&w, &env, &params).unwrap();
    assert!(v.passed, "{}", v.oracle);
    assert_eq!(v.metric("total_nodes").unwrap() as u64, direct.total_nodes);
    assert_eq!(v.metric("max_depth").unwrap() as u64, direct.max_depth);
    assert_eq!(v.metric("leaves").unwrap() as u64, direct.leaves);
    assert_eq!(bits(v.metric("mnodes_per_sec").unwrap()), bits(direct.mnodes_per_sec));
    assert_eq!(bits(v.end_seconds), bits(direct.seconds));
}

#[test]
fn ft_adapter_matches_direct_driver() {
    let w = FtWorkload;
    let env = w.default_env();
    let params = Params::empty();
    let direct = hupc_fft::run_ft_upc(ft_config(&env, &params).unwrap());
    let v = run_workload(&w, &env, &params).unwrap();
    assert!(v.passed, "{}", v.oracle);
    assert_eq!(bits(v.metric("gflops").unwrap()), bits(direct.gflops));
    assert_eq!(bits(v.metric("comm_seconds").unwrap()), bits(direct.comm_seconds));
    assert_eq!(bits(v.end_seconds), bits(direct.total_seconds));
}

#[test]
fn gups_adapter_matches_direct_driver() {
    let w = GupsWorkload;
    let env = w.default_env();
    let params = Params::empty();
    let direct = hupc_gups::run_gups(gups_config(&env, &params).unwrap());
    let v = run_workload(&w, &env, &params).unwrap();
    assert!(v.passed, "{}", v.oracle);
    assert_eq!(v.metric("errors").unwrap() as u64, direct.errors);
    assert_eq!(v.metric("total_updates").unwrap() as u64, direct.total_updates);
    assert_eq!(bits(v.metric("gups").unwrap()), bits(direct.gups));
    assert_eq!(bits(v.end_seconds), bits(direct.seconds));
}

#[test]
fn stream_adapter_matches_direct_driver() {
    let w = StreamWorkload;
    let env = w.default_env();
    let params = Params::empty();
    let direct = hupc_stream::run_twisted_triad(stream_config(&env, &params).unwrap());
    let v = run_workload(&w, &env, &params).unwrap();
    assert!(v.passed, "{}", v.oracle);
    assert_eq!(bits(v.metric("gbps").unwrap()), bits(direct.gbps));
    assert_eq!(bits(v.metric("max_error").unwrap()), bits(direct.max_error));
    assert_eq!(bits(v.end_seconds), bits(direct.seconds));
}

/// Each adapter re-parses params per call; defaults must round-trip with
/// the explicit spelling of those defaults.
#[test]
fn explicit_defaults_equal_empty_params() {
    let w = UtsWorkload;
    let env = w.default_env();
    let a = run_workload(&w, &env, &Params::empty()).unwrap();
    let p = Params::parse(&["seed=5", "strategy=local"]).unwrap();
    let b = run_workload(&w, &env, &p).unwrap();
    assert_eq!(bits(a.end_seconds), bits(b.end_seconds));
    assert_eq!(a.metric("total_nodes"), b.metric("total_nodes"));
}

#[test]
fn md_energy_identical_across_backends() {
    let w = MdWorkload;
    let seq = run_workload(&w, &w.default_env().with_backend(SimBackend::Sequential), &Params::empty())
        .unwrap();
    let par = run_workload(&w, &w.default_env().with_backend(SimBackend::Parallel(4)), &Params::empty())
        .unwrap();
    assert!(seq.passed, "{}", seq.oracle);
    assert!(par.passed, "{}", par.oracle);
    for m in ["e0", "e_final", "energy_drift", "pairs"] {
        assert_eq!(
            bits(seq.metric(m).unwrap()),
            bits(par.metric(m).unwrap()),
            "metric {m} diverges between backends"
        );
    }
    assert_eq!(bits(seq.end_seconds), bits(par.end_seconds));
}

#[test]
fn cg_residual_identical_across_backends() {
    let w = CgWorkload;
    let seq = run_workload(&w, &w.default_env().with_backend(SimBackend::Sequential), &Params::empty())
        .unwrap();
    let par = run_workload(&w, &w.default_env().with_backend(SimBackend::Parallel(4)), &Params::empty())
        .unwrap();
    assert!(seq.passed, "{}", seq.oracle);
    assert!(par.passed, "{}", par.oracle);
    for m in ["true_rel_residual", "rec_rel_residual", "nnz"] {
        assert_eq!(
            bits(seq.metric(m).unwrap()),
            bits(par.metric(m).unwrap()),
            "metric {m} diverges between backends"
        );
    }
    assert_eq!(bits(seq.end_seconds), bits(par.end_seconds));
}
