//! SPMD launcher, the per-thread `Upc` view, and deferred cost accounting.

use std::collections::HashMap;
use std::sync::Arc;

use hupc_gasnet::{CommError, Gasnet, GasnetConfig, Handle};
use hupc_sim::{time, Ctx, MutexId, SimCell, Simulation, SimulationStats, Time};
use hupc_topo::SocketId;

use crate::elem::PgasElem;
use crate::shared::SharedArray;

/// Bit in the actor-local tag word marking a user-spawned sub-thread context
/// (set by `hupc-subthreads` workers). Kept on the actor's [`Ctx`] — not in
/// OS-thread TLS — because coroutine actors all share the scheduler's thread,
/// where TLS would leak the flag from one actor to the next.
const SUBTHREAD_TAG: u64 = 1;

/// Mark / unmark an actor as a sub-thread context. Gates UPC calls per
/// [`ThreadSafety`].
pub fn set_subthread_context(ctx: &Ctx, on: bool) {
    let tag = ctx.actor_tag();
    ctx.set_actor_tag(if on {
        tag | SUBTHREAD_TAG
    } else {
        tag & !SUBTHREAD_TAG
    });
}

/// Whether the given actor is a sub-thread context.
pub fn in_subthread_context(ctx: &Ctx) -> bool {
    ctx.actor_tag() & SUBTHREAD_TAG != 0
}

/// MPI-2-style thread-safety levels for UPC calls from sub-threads
/// (thesis §4.2.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ThreadSafety {
    /// Only the master UPC thread may communicate; a call from a sub-thread
    /// panics — modeling the crash the thesis reports for user-spawned
    /// pthreads lacking per-thread runtime data (Berkeley UPC bug 2808).
    Funneled,
    /// Sub-threads may call, one at a time (runtime-serialized).
    Serialized,
    /// Unrestricted concurrent calls (the thread-safe runtime the thesis
    /// argues for).
    Multiple,
}

/// Job configuration: platform + layout + runtime policy.
#[derive(Clone, Debug)]
pub struct UpcConfig {
    pub gasnet: GasnetConfig,
    pub safety: ThreadSafety,
}

impl UpcConfig {
    /// Small-platform defaults for tests and examples.
    pub fn test_default(n_threads: usize, nodes_used: usize) -> Self {
        UpcConfig {
            gasnet: GasnetConfig::test_default(n_threads, nodes_used),
            safety: ThreadSafety::Multiple,
        }
    }

    /// The standard app-crate launch configuration: packed-core binding,
    /// processes+PSHM, default overheads/retry, no barrier timeout,
    /// `Multiple` thread safety. Everything the apps actually vary —
    /// machine, layout, conduit, segment sizing, fault plan — is a
    /// parameter; the rest is pinned here so workloads agree on it.
    pub fn standard(
        machine: hupc_topo::MachineSpec,
        n_threads: usize,
        nodes_used: usize,
        conduit: hupc_net::Conduit,
        segment_words: usize,
        fault: Option<hupc_gasnet::FaultPlan>,
    ) -> Self {
        UpcConfig {
            gasnet: GasnetConfig {
                machine,
                n_threads,
                nodes_used,
                bind: hupc_topo::BindPolicy::PackedCores,
                backend: hupc_gasnet::Backend::processes_pshm(),
                conduit,
                segment_words,
                overheads: None,
                fault,
                retry: Default::default(),
                barrier_timeout: None,
            },
            safety: ThreadSafety::Multiple,
        }
    }
}

/// Per-thread deferred access-cost counters.
#[derive(Default)]
pub(crate) struct CostCounters {
    /// Pointer-to-shared translations accumulated since last flush.
    pub translations: u64,
    /// Fixed software overheads (e.g. PSHM per-access costs), ns.
    pub software_ns: u64,
    /// Streaming memory bytes per home socket.
    pub socket_bytes: HashMap<usize, u64>,
}

/// A pluggable implementation of the word-level collectives. `hupc-coll`
/// installs its topology-aware hierarchical algorithms through this seam
/// ([`UpcRuntime::set_coll_provider`]); with no provider installed the
/// built-in flat algorithms run. Implementations must call the `*_flat`
/// methods (never the delegating wrappers) for their flat path, or they
/// recurse.
pub trait CollProvider: Send + Sync {
    /// See [`Upc::broadcast_words`].
    fn broadcast_words(&self, upc: &Upc<'_>, root: usize, words: &mut [u64]);
    /// Element-wise all-reduce of a word vector with a combining function
    /// (associative + commutative). Scalar [`Upc::allreduce_words`] goes
    /// through this with a 1-word slice.
    fn allreduce_word_vec(
        &self,
        upc: &Upc<'_>,
        vals: &mut [u64],
        combine: &(dyn Fn(u64, u64) -> u64 + Sync),
    );
    /// See [`Upc::allgather_words`].
    fn allgather_words(&self, upc: &Upc<'_>, mine: &[u64], out: &mut [u64]);
    /// Word-level all-to-all: thread `me`'s source block for thread `j`
    /// lives at `src_off + j*block_words`, and lands at
    /// `dst_off + me*block_words` in `j`'s segment.
    fn all_exchange_words(
        &self,
        upc: &Upc<'_>,
        src_off: usize,
        dst_off: usize,
        block_words: usize,
        blocking: bool,
    );
    /// Group-staged barrier (intra-group arrive, inter-leader sync, release).
    fn staged_barrier(&self, upc: &Upc<'_>);
}

/// Shared runtime state for one UPC job.
pub struct UpcRuntime {
    gasnet: Arc<Gasnet>,
    heap_next: SimCell<usize>,
    costs: Vec<SimCell<CostCounters>>,
    /// Per-thread reusable word buffer for bulk staging ([`Upc::with_scratch`]).
    /// Grows on demand and never shrinks, so steady-state bulk transfers stop
    /// allocating.
    scratch: Vec<SimCell<Vec<u64>>>,
    safety: ThreadSafety,
    serial: MutexId,
    /// Scratch region (word offset 0..SCRATCH_WORDS of every segment)
    /// reserved for collectives.
    pub(crate) scratch_off: usize,
    /// Installed hierarchical-collectives provider (set once, pre-run).
    coll: std::sync::OnceLock<Arc<dyn CollProvider>>,
}

/// Words reserved at the bottom of every segment for collective scratch.
/// Public so collective implementations outside this crate (`hupc-coll`) can
/// size their pipeline chunks against the same ceiling.
pub const SCRATCH_WORDS: usize = 256;

impl UpcRuntime {
    pub fn gasnet(&self) -> &Arc<Gasnet> {
        &self.gasnet
    }

    pub fn safety(&self) -> ThreadSafety {
        self.safety
    }

    /// Construct a `Upc` view for UPC thread `me` on an arbitrary actor
    /// context. This is how sub-threads reach the global address space
    /// (§4.1.2): the view is subject to the job's [`ThreadSafety`] level on
    /// every call.
    pub fn view<'b>(self: &Arc<Self>, ctx: &'b Ctx, me: usize) -> Upc<'b> {
        assert!(me < self.gasnet.n_threads());
        Upc {
            ctx,
            rt: Arc::clone(self),
            me,
        }
    }

    /// The collective scratch region every segment reserves: `(offset,
    /// words)`. Collective implementations stage pipeline chunks here.
    pub fn coll_scratch(&self) -> (usize, usize) {
        (self.scratch_off, SCRATCH_WORDS)
    }

    /// Install a hierarchical-collectives provider (pre-run, once). Every
    /// subsequent `Upc` collective call delegates to it; panics on a second
    /// install (the provider owns pre-built teams tied to this job).
    pub fn set_coll_provider(&self, p: Arc<dyn CollProvider>) {
        if self.coll.set(p).is_err() {
            panic!("collective provider already installed for this job");
        }
    }

    /// The installed collective provider, if any.
    pub fn coll_provider(&self) -> Option<&Arc<dyn CollProvider>> {
        self.coll.get()
    }

    /// Allocate `words` per-thread symmetric words; returns the common
    /// offset. (All threads' segments get the same layout, like static
    /// `shared` declarations compiled into the UPC binary.)
    pub fn alloc_words(&self, words: usize) -> usize {
        let off = self.heap_next.with_mut(|n| {
            let off = *n;
            *n += words;
            off
        });
        for t in 0..self.gasnet.n_threads() {
            self.gasnet.segment(t).ensure(off + words);
        }
        off
    }
}

/// A job being configured: platform built, shared objects allocatable,
/// not yet running.
pub struct UpcJob {
    sim: Simulation,
    rt: Arc<UpcRuntime>,
}

impl UpcJob {
    pub fn new(cfg: UpcConfig) -> Self {
        let mut sim = Simulation::new();
        let gasnet = Gasnet::new(&mut sim, cfg.gasnet);
        let serial = sim.kernel().new_mutex();
        let costs = (0..gasnet.n_threads()).map(|_| SimCell::default()).collect();
        let scratch = (0..gasnet.n_threads()).map(|_| SimCell::default()).collect();
        let rt = Arc::new(UpcRuntime {
            gasnet,
            heap_next: SimCell::new(SCRATCH_WORDS),
            costs,
            scratch,
            safety: cfg.safety,
            serial,
            scratch_off: 0,
            coll: std::sync::OnceLock::new(),
        });
        UpcJob { sim, rt }
    }

    /// The runtime (for allocating shared objects, building teams, …).
    pub fn runtime(&self) -> &Arc<UpcRuntime> {
        &self.rt
    }

    /// The underlying communication runtime.
    pub fn gasnet(&self) -> &Arc<Gasnet> {
        self.rt.gasnet()
    }

    /// Kernel access for pre-run setup (extra barriers, teams, locks).
    pub fn kernel(&self) -> std::sync::MutexGuard<'_, hupc_sim::Kernel> {
        self.sim.kernel()
    }

    /// Declare `shared [block] T name[n]`: a block-cyclic shared array.
    /// `block == 0` is shorthand for fully-blocked (`[*]`) layout.
    pub fn alloc_shared<T: PgasElem>(&self, n: usize, block: usize) -> SharedArray<T> {
        SharedArray::allocate(&self.rt, n, block)
    }

    /// Allocate a UPC lock with affinity to thread 0.
    pub fn alloc_lock(&self) -> crate::lock::UpcLock {
        crate::lock::UpcLock::allocate(&mut self.sim.kernel(), &self.rt, 0)
    }

    /// Allocate a UPC lock with affinity to `home`.
    pub fn alloc_lock_at(&self, home: usize) -> crate::lock::UpcLock {
        crate::lock::UpcLock::allocate(&mut self.sim.kernel(), &self.rt, home)
    }

    /// Run the SPMD body on every UPC thread; returns when all finish.
    /// Panics (with diagnostics) on deadlock or actor panic; use
    /// [`UpcJob::run_result`] to observe those failures as values.
    pub fn run<F>(self, body: F) -> SimulationStats
    where
        F: for<'a> Fn(Upc<'a>) + Send + Sync + 'static,
    {
        self.run_result(body).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Like [`UpcJob::run`] but returns the structured [`SimResult`]:
    /// deadlocks carry the wait graph (with each stuck thread's recent
    /// activity) and actor panics the typed payload, instead of panicking.
    /// This is what the `hupc-check` schedule explorer drives — a perturbed
    /// interleaving that deadlocks must surface as a value, not abort the
    /// exploration process.
    pub fn run_result<F>(mut self, body: F) -> hupc_sim::SimResult
    where
        F: for<'a> Fn(Upc<'a>) + Send + Sync + 'static,
    {
        let body = Arc::new(body);
        let n = self.rt.gasnet().n_threads();
        for t in 0..n {
            let rt = Arc::clone(&self.rt);
            let body = Arc::clone(&body);
            self.sim.spawn(format!("upc{t}"), move |ctx| {
                let upc = Upc { ctx, rt, me: t };
                body(upc);
            });
        }
        self.sim.run_result()
    }

    /// Like [`UpcJob::run`] but also returns a value from thread 0 via the
    /// provided cell (convenience for tests and benches).
    pub fn run_collecting<F, R>(self, body: F) -> (SimulationStats, R)
    where
        F: for<'a> Fn(Upc<'a>) -> Option<R> + Send + Sync + 'static,
        R: Send + Default + 'static,
    {
        let out: Arc<SimCell<R>> = Arc::new(SimCell::default());
        let out2 = Arc::clone(&out);
        let stats = self.run(move |upc| {
            if let Some(r) = body(upc) {
                out2.with_mut(|slot| *slot = r);
            }
        });
        let r = Arc::try_unwrap(out)
            .unwrap_or_else(|_| panic!("run_collecting: output still shared"))
            .into_inner();
        (stats, r)
    }
}

/// The per-thread view of the UPC world (what `MYTHREAD`, `THREADS` and the
/// `upc_*` calls see).
pub struct Upc<'a> {
    ctx: &'a Ctx,
    rt: Arc<UpcRuntime>,
    me: usize,
}

impl<'a> Upc<'a> {
    /// `MYTHREAD`.
    #[inline]
    pub fn mythread(&self) -> usize {
        self.me
    }

    /// `THREADS`.
    #[inline]
    pub fn threads(&self) -> usize {
        self.rt.gasnet().n_threads()
    }

    /// The simulation context (advanced APIs).
    pub fn ctx(&self) -> &'a Ctx {
        self.ctx
    }

    /// The communication runtime.
    pub fn gasnet(&self) -> &Arc<Gasnet> {
        self.rt.gasnet()
    }

    /// The shared runtime.
    pub fn runtime(&self) -> &Arc<UpcRuntime> {
        &self.rt
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.ctx.now()
    }

    /// This thread's trace location (node + thread).
    #[cfg(feature = "trace")]
    pub fn trace_loc(&self) -> hupc_trace::Loc {
        hupc_trace::Loc::new(
            self.rt.gasnet().thread_node(self.me).0 as u32,
            self.me as u32,
        )
    }

    /// Whether metrics collection is active (counters level or above).
    #[cfg(feature = "trace")]
    #[inline]
    fn metrics_on(&self) -> bool {
        self.ctx
            .tracer()
            .is_some_and(|t| t.enabled(hupc_trace::TraceLevel::Counters))
    }

    /// Bump a metrics counter attributed to this thread's location.
    #[cfg(feature = "trace")]
    #[inline]
    pub fn trace_count(&self, name: &'static str, v: u64) {
        if self.metrics_on() {
            self.ctx.trace_count(name, self.trace_loc(), v);
        }
    }

    /// Record a histogram observation attributed to this thread's location.
    #[cfg(feature = "trace")]
    #[inline]
    pub fn trace_observe(&self, name: &'static str, v: u64) {
        if self.metrics_on() {
            self.ctx.trace_observe(name, self.trace_loc(), v);
        }
    }

    /// Derive a `Upc` view for the same thread from a sub-thread's context
    /// (the PGAS "extends to sub-threads" property of §4.1.2; subject to the
    /// job's [`ThreadSafety`] level on every call).
    pub fn view_for_subthread<'b>(&self, sub_ctx: &'b Ctx) -> Upc<'b> {
        Upc {
            ctx: sub_ctx,
            rt: Arc::clone(&self.rt),
            me: self.me,
        }
    }

    // ----- thread-safety gate -------------------------------------------------

    fn safety_gate(&self) -> Option<MutexId> {
        if !in_subthread_context(self.ctx) {
            return None;
        }
        match self.rt.safety {
            ThreadSafety::Funneled => panic!(
                "UPC call from a user-spawned sub-thread: the runtime was \
                 configured THREAD_FUNNELED (thesis §4.2.3 / Berkeley UPC \
                 bug 2808); use ThreadSafety::Multiple or funnel through the \
                 master thread"
            ),
            ThreadSafety::Serialized => {
                self.ctx.mutex_lock(self.rt.serial);
                Some(self.rt.serial)
            }
            ThreadSafety::Multiple => None,
        }
    }

    fn safety_release(&self, gate: Option<MutexId>) {
        if let Some(m) = gate {
            self.ctx.mutex_unlock(m);
        }
    }

    // ----- synchronization ------------------------------------------------------

    /// `upc_barrier`: flushes deferred access costs, drains outstanding
    /// non-blocking ops, synchronizes all threads.
    pub fn barrier(&self) {
        self.flush_access_costs();
        let gate = self.safety_gate();
        self.rt.gasnet().barrier(self.ctx, self.me);
        self.safety_release(gate);
    }

    /// `upc_notify`: the arrival half of the split-phase barrier. Flushes
    /// deferred access costs and drains outstanding operations, then
    /// returns immediately — local work may overlap the barrier.
    pub fn notify(&self) {
        self.flush_access_costs();
        let gate = self.safety_gate();
        self.rt.gasnet().barrier_notify(self.ctx, self.me);
        self.safety_release(gate);
    }

    /// `upc_wait`: the completion half of the split-phase barrier.
    pub fn wait(&self) {
        let gate = self.safety_gate();
        self.rt.gasnet().barrier_wait_phase(self.ctx, self.me);
        self.safety_release(gate);
    }

    /// `upc_waitsync`.
    pub fn wait_sync(&self, h: Handle) {
        let gate = self.safety_gate();
        self.rt.gasnet().wait_sync(self.ctx, self.me, h);
        self.safety_release(gate);
    }

    /// `upc_trysync`.
    pub fn try_sync(&self, h: Handle) -> bool {
        let gate = self.safety_gate();
        let r = self.rt.gasnet().try_sync(self.ctx, self.me, h);
        self.safety_release(gate);
        r
    }

    // ----- bulk communication ----------------------------------------------------

    /// `upc_memput` (blocking) of words into `dst`'s segment.
    pub fn memput(&self, dst: usize, dst_off: usize, data: &[u64]) {
        let gate = self.safety_gate();
        self.rt.gasnet().put(self.ctx, self.me, dst, dst_off, data);
        self.safety_release(gate);
    }

    /// Fallible `upc_memput`: surfaces [`CommError`] when the fault plan
    /// exhausts the retry budget, so resilient algorithms (e.g. UTS work
    /// stealing) can route around a dead link instead of dying.
    pub fn try_memput(
        &self,
        dst: usize,
        dst_off: usize,
        data: &[u64],
    ) -> Result<(), CommError> {
        let gate = self.safety_gate();
        let r = self.rt.gasnet().try_put(self.ctx, self.me, dst, dst_off, data);
        self.safety_release(gate);
        r
    }

    /// Fallible `upc_memget`.
    pub fn try_memget(
        &self,
        src: usize,
        src_off: usize,
        out: &mut [u64],
    ) -> Result<(), CommError> {
        let gate = self.safety_gate();
        let r = self.rt.gasnet().try_get(self.ctx, self.me, src, src_off, out);
        self.safety_release(gate);
        r
    }

    /// Fallible `upc_barrier` (consults `GasnetConfig::barrier_timeout`).
    pub fn try_barrier(&self) -> Result<(), CommError> {
        self.flush_access_costs();
        let gate = self.safety_gate();
        let r = self.rt.gasnet().try_barrier(self.ctx, self.me);
        self.safety_release(gate);
        r
    }

    /// `bupc_memput_async`.
    pub fn memput_nb(&self, dst: usize, dst_off: usize, data: &[u64]) -> Handle {
        let gate = self.safety_gate();
        let h = self.rt.gasnet().put_nb(self.ctx, self.me, dst, dst_off, data);
        self.safety_release(gate);
        h
    }

    /// `upc_memget` (blocking).
    pub fn memget(&self, src: usize, src_off: usize, out: &mut [u64]) {
        let gate = self.safety_gate();
        self.rt.gasnet().get(self.ctx, self.me, src, src_off, out);
        self.safety_release(gate);
    }

    /// `bupc_memget_async`.
    pub fn memget_nb(&self, src: usize, src_off: usize, out: &mut [u64]) -> Handle {
        let gate = self.safety_gate();
        let h = self.rt.gasnet().get_nb(self.ctx, self.me, src, src_off, out);
        self.safety_release(gate);
        h
    }

    /// `upc_memcpy` (blocking) between two shared regions.
    pub fn memcpy(&self, dst: usize, dst_off: usize, src: usize, src_off: usize, len: usize) {
        let gate = self.safety_gate();
        self.rt
            .gasnet()
            .memcpy(self.ctx, self.me, dst, dst_off, src, src_off, len);
        self.safety_release(gate);
    }

    /// `bupc_memcpy_async`.
    pub fn memcpy_nb(
        &self,
        dst: usize,
        dst_off: usize,
        src: usize,
        src_off: usize,
        len: usize,
    ) -> Handle {
        let gate = self.safety_gate();
        let h = self
            .rt
            .gasnet()
            .memcpy_nb(self.ctx, self.me, dst, dst_off, src, src_off, len);
        self.safety_release(gate);
        h
    }

    // ----- zero-copy bulk transfers ------------------------------------------------

    /// `upc_memget` timing with an in-place view: `f` reads the source
    /// segment words directly — no staging buffer, no per-element decode
    /// round trip. Charged identically to [`Upc::memget`] of `words` words.
    /// `f` runs under the source segment's borrow: it must not issue UPC
    /// calls or touch that segment again.
    pub fn memget_with<R>(
        &self,
        src: usize,
        src_off: usize,
        words: usize,
        f: impl FnOnce(&[u64]) -> R,
    ) -> R {
        let gate = self.safety_gate();
        let r = self
            .rt
            .gasnet()
            .get_with(self.ctx, self.me, src, src_off, words, f);
        self.safety_release(gate);
        r
    }

    /// `upc_memput` timing with an in-place view: `f` writes the destination
    /// segment words directly. Charged identically to [`Upc::memput`] of
    /// `words` words. Same closure restrictions as [`Upc::memget_with`].
    pub fn memput_with<R>(
        &self,
        dst: usize,
        dst_off: usize,
        words: usize,
        f: impl FnOnce(&mut [u64]) -> R,
    ) -> R {
        let gate = self.safety_gate();
        let r = self
            .rt
            .gasnet()
            .put_with(self.ctx, self.me, dst, dst_off, words, f);
        self.safety_release(gate);
        r
    }

    /// `bupc_memput_async` timing with an in-place view (the closure runs at
    /// issue time, like `memput_nb` moving bytes eagerly).
    pub fn memput_nb_with<R>(
        &self,
        dst: usize,
        dst_off: usize,
        words: usize,
        f: impl FnOnce(&mut [u64]) -> R,
    ) -> (R, Handle) {
        let gate = self.safety_gate();
        let r = self
            .rt
            .gasnet()
            .put_nb_with(self.ctx, self.me, dst, dst_off, words, f);
        self.safety_release(gate);
        r
    }

    /// Run `f` with this thread's reusable scratch buffer sized to `words`
    /// words. The buffer's contents are unspecified on entry (it is reused
    /// across calls, grow-only); callers must overwrite what they read.
    /// UPC calls are allowed inside `f` (the scratch is a private per-thread
    /// cell, not a segment), but nested `with_scratch` on the same thread —
    /// including from a sub-thread view of the same UPC thread — is not.
    pub fn with_scratch<R>(&self, words: usize, f: impl FnOnce(&mut [u64]) -> R) -> R {
        self.rt.scratch[self.me].with_mut(|buf| {
            if buf.len() < words {
                buf.resize(words, 0);
            }
            f(&mut buf[..words])
        })
    }

    // ----- compute charging -------------------------------------------------------

    /// Charge `work` of single-thread CPU time on this thread's core.
    pub fn compute(&self, work: Time) {
        self.rt.gasnet().compute(self.ctx, self.me, work);
    }

    /// Charge `flops` at `efficiency` of peak.
    pub fn compute_flops(&self, flops: f64, efficiency: f64) {
        self.rt.gasnet().compute_flops_on(
            self.ctx,
            self.rt.gasnet().thread_pu(self.me),
            flops,
            efficiency,
        );
    }

    /// Charge streaming memory traffic against `home` (blocking, fair-shared).
    pub fn charge_mem_traffic(&self, home: SocketId, bytes: usize) {
        self.rt.gasnet().mem_stream(self.ctx, self.me, home, bytes);
    }

    /// Home socket of a thread's shared data.
    pub fn segment_home(&self, t: usize) -> SocketId {
        self.rt.gasnet().segment_home(t)
    }

    // ----- deferred fine-grained access costs ----------------------------------------

    /// Record `n` pointer-to-shared translations (flushed at the next
    /// barrier / [`Upc::flush_access_costs`]). Public so application kernels
    /// can account fine-grained costs they incur in batched loops.
    pub fn note_translation(&self, n: u64) {
        self.rt.costs[self.me].with_mut(|c| c.translations += n);
    }

    /// Record `ns` nanoseconds of miscellaneous per-access software cost.
    pub fn note_software_ns(&self, ns: u64) {
        self.rt.costs[self.me].with_mut(|c| c.software_ns += ns);
    }

    /// Record streaming memory traffic against `socket`'s controller.
    pub fn note_socket_traffic(&self, socket: SocketId, bytes: u64) {
        self.rt.costs[self.me].with_mut(|c| {
            *c.socket_bytes.entry(socket.0).or_insert(0) += bytes;
        });
    }

    /// Convert the accumulated fine-grained access costs into simulation
    /// time: CPU time for pointer translations and software overheads,
    /// fair-shared controller time for memory traffic. Called automatically
    /// at [`Upc::barrier`].
    pub fn flush_access_costs(&self) {
        let (trans, soft, traffic) = self.rt.costs[self.me].with_mut(|c| {
            (
                std::mem::take(&mut c.translations),
                std::mem::take(&mut c.software_ns),
                std::mem::take(&mut c.socket_bytes),
            )
        });
        let cpu_ns = trans * self.rt.gasnet().overheads().ptr_translation + soft;
        if cpu_ns > 0 {
            self.compute(time::ns(cpu_ns));
        }
        let mut traffic: Vec<(usize, u64)> = traffic.into_iter().collect();
        traffic.sort_unstable(); // deterministic charge order
        for (socket, bytes) in traffic {
            self.charge_mem_traffic(SocketId(socket), bytes as usize);
        }
    }
}

impl std::fmt::Debug for Upc<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Upc")
            .field("mythread", &self.me)
            .field("threads", &self.threads())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn spmd_launch_runs_all_threads() {
        let count = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&count);
        let job = UpcJob::new(UpcConfig::test_default(6, 2));
        job.run(move |upc| {
            assert_eq!(upc.threads(), 6);
            assert!(upc.mythread() < 6);
            c2.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn memput_memget_between_threads() {
        let job = UpcJob::new(UpcConfig::test_default(4, 2));
        let rt = Arc::clone(job.runtime());
        let off = rt.alloc_words(8);
        job.run(move |upc| {
            let me = upc.mythread();
            if me == 0 {
                upc.memput(2, off, &[11, 22, 33]);
            }
            upc.barrier();
            let mut out = [0u64; 3];
            upc.memget(2, off, &mut out);
            assert_eq!(out, [11, 22, 33]);
        });
    }

    #[test]
    fn symmetric_allocation_is_disjoint() {
        let job = UpcJob::new(UpcConfig::test_default(2, 1));
        let rt = job.runtime();
        let a = rt.alloc_words(10);
        let b = rt.alloc_words(5);
        assert!(a >= SCRATCH_WORDS);
        assert_eq!(b, a + 10);
    }

    #[test]
    fn deferred_costs_flush_at_barrier() {
        let job = UpcJob::new(UpcConfig::test_default(2, 1));
        job.run(move |upc| {
            if upc.mythread() == 0 {
                upc.note_translation(1_000_000); // 1e6 × 17ns = 17ms
            }
            let t0 = upc.now();
            upc.barrier();
            let dt = upc.now() - t0;
            assert!(
                dt >= time::ms(16),
                "barrier should have flushed translation charge, dt={dt}"
            );
        });
    }

    #[test]
    fn run_collecting_returns_thread0_value() {
        let job = UpcJob::new(UpcConfig::test_default(3, 1));
        let (_stats, v) = job.run_collecting(|upc| {
            if upc.mythread() == 0 {
                Some(12345u64)
            } else {
                None
            }
        });
        assert_eq!(v, 12345);
    }

    #[test]
    #[should_panic(expected = "THREAD_FUNNELED")]
    fn funneled_rejects_subthread_calls() {
        let mut cfg = UpcConfig::test_default(2, 1);
        cfg.safety = ThreadSafety::Funneled;
        let job = UpcJob::new(cfg);
        let rt = Arc::clone(job.runtime());
        let off = rt.alloc_words(1);
        job.run(move |upc| {
            if upc.mythread() == 0 {
                set_subthread_context(upc.ctx(), true);
                // Calling a UPC op from a "sub-thread" context must panic.
                let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    upc.memput(1, off, &[1]);
                }));
                set_subthread_context(upc.ctx(), false);
                if let Err(p) = r {
                    std::panic::resume_unwind(p);
                }
            }
        });
    }

    #[test]
    fn serialized_allows_subthread_calls() {
        let mut cfg = UpcConfig::test_default(2, 1);
        cfg.safety = ThreadSafety::Serialized;
        let job = UpcJob::new(cfg);
        let rt = Arc::clone(job.runtime());
        let off = rt.alloc_words(1);
        job.run(move |upc| {
            if upc.mythread() == 0 {
                set_subthread_context(upc.ctx(), true);
                upc.memput(1, off, &[9]);
                set_subthread_context(upc.ctx(), false);
            }
            upc.barrier();
            if upc.mythread() == 1 {
                let mut out = [0u64];
                upc.memget(1, off, &mut out);
                assert_eq!(out[0], 9);
            }
        });
    }
}
