//! Collective operations: broadcast, reductions, allgather, and all-to-all
//! exchange.
//!
//! UPC 1.2 ships these in `upc_collective.h`; the thesis additionally leans
//! on hand-written point-to-point exchanges (its FT all-to-all). Here the
//! collectives are built from the same one-sided primitives a UPC programmer
//! would use, so their modeled cost is the sum of the underlying puts/gets
//! plus barriers.
//!
//! Every public entry point first consults the job's installed
//! [`CollProvider`](crate::CollProvider) (the seam `hupc-coll` plugs its
//! topology-aware hierarchical algorithms into) and otherwise falls back to
//! the flat `*_flat` reference algorithms below. The flat algorithms pipeline
//! payloads through the segment scratch region in `SCRATCH_WORDS / 2`-word
//! chunks, so arbitrarily large payloads work — the scratch ceiling is a
//! pipeline depth, not a hard limit.

use crate::elem::PgasElem;
use crate::runtime::{Upc, SCRATCH_WORDS};
use crate::shared::SharedArray;

/// Pipeline chunk for flat collectives: half the scratch region (the other
/// half is the reduction gather area).
const HALF: usize = SCRATCH_WORDS / 2;

impl<'a> Upc<'a> {
    /// Broadcast `words` from `root` to every thread (in place). Delegates
    /// to the installed collective provider if any, else runs the flat
    /// binomial tree.
    pub fn broadcast_words(&self, root: usize, words: &mut [u64]) {
        if let Some(p) = self.runtime().coll_provider().cloned() {
            p.broadcast_words(self, root, words);
            return;
        }
        self.broadcast_words_flat(root, words);
    }

    /// The flat reference broadcast: a single topology-blind binomial tree,
    /// log₂(THREADS) rounds of puts with one barrier per round, pipelined
    /// through the scratch region in `SCRATCH_WORDS / 2`-word chunks.
    pub fn broadcast_words_flat(&self, root: usize, words: &mut [u64]) {
        let p = self.threads();
        let me = self.mythread();
        #[cfg(feature = "trace")]
        self.ctx().trace_emit(
            hupc_trace::EventKind::CollBegin,
            hupc_trace::coll::BROADCAST,
            words.len() as u64,
        );
        let scratch = self.runtime().scratch_off;
        // Rotate ranks so root is rank 0.
        let rel = (me + p - root) % p;
        // One reusable bounce buffer for the whole tree (hoisted out of the
        // round loop: senders re-read identical scratch contents each round).
        let mut buf = vec![0u64; words.len().min(HALF)];
        let nchunks = words.len().div_ceil(HALF).max(1);
        for c in 0..nchunks {
            let lo = c * HALF;
            let hi = ((c + 1) * HALF).min(words.len());
            let chunk = &mut words[lo..hi];
            if rel == 0 {
                self.gasnet().segment(me).write(scratch, chunk);
            }
            let mut staged = false;
            let mut stride = 1;
            while stride < p {
                self.barrier();
                if rel < stride && rel + stride < p {
                    let target = (root + rel + stride) % p;
                    let b = &mut buf[..chunk.len()];
                    if !staged {
                        self.gasnet().segment(me).read(scratch, b);
                        staged = true;
                    }
                    self.memput(target, scratch, b);
                }
                stride <<= 1;
            }
            self.barrier();
            self.gasnet().segment(me).read(scratch, chunk);
        }
        #[cfg(feature = "trace")]
        self.ctx()
            .trace_emit(hupc_trace::EventKind::CollEnd, hupc_trace::coll::BROADCAST, 0);
    }

    /// Broadcast one word from `root`.
    pub fn broadcast_word(&self, root: usize, v: u64) -> u64 {
        let mut w = [v];
        self.broadcast_words(root, &mut w);
        w[0]
    }

    /// All-reduce a word with a combining function (must be associative and
    /// commutative).
    pub fn allreduce_words<F>(&self, v: u64, combine: F) -> u64
    where
        F: Fn(u64, u64) -> u64 + Sync,
    {
        let mut vals = [v];
        self.allreduce_word_vec(&mut vals, &combine);
        vals[0]
    }

    /// Element-wise all-reduce of a word vector (in place) with a combining
    /// function. Delegates to the installed provider if any.
    pub fn allreduce_word_vec(&self, vals: &mut [u64], combine: &(dyn Fn(u64, u64) -> u64 + Sync)) {
        if let Some(p) = self.runtime().coll_provider().cloned() {
            p.allreduce_word_vec(self, vals, combine);
            return;
        }
        self.allreduce_word_vec_flat(vals, combine);
    }

    /// The flat reference all-reduce, element by element: each element is a
    /// gather of `THREADS` words into thread 0 — pipelined through the
    /// gather half of the scratch region in waves when `THREADS` exceeds it
    /// — combined at the root in rank order, then broadcast back.
    pub fn allreduce_word_vec_flat(
        &self,
        vals: &mut [u64],
        combine: &(dyn Fn(u64, u64) -> u64 + Sync),
    ) {
        for v in vals.iter_mut() {
            *v = self.allreduce_word_flat_with(*v, |acc, x| match acc {
                None => Some(x),
                Some(a) => Some(combine(a, x)),
            });
        }
    }

    /// Gather-to-root scaffolding shared by the integer and float flat
    /// reductions: `fold` sees every thread's word in ascending rank order
    /// (`None` accumulator on the first) and the final accumulator is
    /// broadcast. Waves of `SCRATCH_WORDS / 2` threads keep the gather
    /// region bounded for any `THREADS`.
    fn allreduce_word_flat_with<A>(&self, v: u64, fold: impl Fn(Option<A>, u64) -> Option<A>) -> u64
    where
        A: Into<u64> + Copy,
    {
        let p = self.threads();
        let me = self.mythread();
        #[cfg(feature = "trace")]
        self.ctx()
            .trace_emit(hupc_trace::EventKind::CollBegin, hupc_trace::coll::ALLREDUCE, 1);
        let gather = self.runtime().scratch_off + HALF;
        let waves = p.div_ceil(HALF);
        let mut acc: Option<A> = None;
        for w in 0..waves {
            if w > 0 {
                // Guard gather-slot reuse: the root's untimed read of wave
                // w-1 must precede wave w's puts.
                self.barrier();
            }
            let lo = w * HALF;
            let hi = ((w + 1) * HALF).min(p);
            if (lo..hi).contains(&me) {
                self.memput(0, gather + (me - lo), &[v]);
            }
            self.barrier();
            if me == 0 {
                let mut all = vec![0u64; hi - lo];
                self.gasnet().segment(0).read(gather, &mut all);
                for &x in &all {
                    acc = fold(acc, x);
                }
            }
        }
        let result = acc.map(Into::into).unwrap_or(0);
        let r = self.broadcast_word(0, result);
        #[cfg(feature = "trace")]
        self.ctx()
            .trace_emit(hupc_trace::EventKind::CollEnd, hupc_trace::coll::ALLREDUCE, 0);
        r
    }

    /// All-reduce an `f64` sum.
    pub fn allreduce_sum_f64(&self, v: f64) -> f64 {
        if let Some(p) = self.runtime().coll_provider().cloned() {
            let mut vals = [v.to_bits()];
            p.allreduce_word_vec(self, &mut vals, &|a, b| {
                (f64::from_bits(a) + f64::from_bits(b)).to_bits()
            });
            return f64::from_bits(vals[0]);
        }
        // Flat path: gather raw bits; combine as floats at the root in rank
        // order (starting from 0.0, like `iter().sum()`) for determinism.
        #[derive(Clone, Copy)]
        struct Bits(f64);
        impl From<Bits> for u64 {
            fn from(b: Bits) -> u64 {
                b.0.to_bits()
            }
        }
        let r = self.allreduce_word_flat_with(v.to_bits(), |acc, x| {
            let a = acc.map(|Bits(a)| a).unwrap_or(0.0);
            Some(Bits(a + f64::from_bits(x)))
        });
        f64::from_bits(r)
    }

    /// Element-wise all-reduce of an `f64` vector (in place), summed in
    /// rank order per element for determinism. One provider call for the
    /// whole vector, so hierarchical algorithms amortize their staging.
    pub fn allreduce_sum_f64_vec(&self, vals: &mut [f64]) {
        let mut bits: Vec<u64> = vals.iter().map(|v| v.to_bits()).collect();
        self.allreduce_word_vec(&mut bits, &|a, b| {
            (f64::from_bits(a) + f64::from_bits(b)).to_bits()
        });
        for (v, b) in vals.iter_mut().zip(&bits) {
            *v = f64::from_bits(*b);
        }
    }

    /// All-reduce a `u64` sum.
    pub fn allreduce_sum_u64(&self, v: u64) -> u64 {
        self.allreduce_words(v, |a, b| a.wrapping_add(b))
    }

    /// All-reduce a `u64` max.
    pub fn allreduce_max_u64(&self, v: u64) -> u64 {
        self.allreduce_words(v, u64::max)
    }

    /// Allgather: every thread contributes `mine` (equal length everywhere);
    /// `out` (length `THREADS * mine.len()`) receives every thread's block
    /// in thread order. Delegates to the installed provider if any.
    pub fn allgather_words(&self, mine: &[u64], out: &mut [u64]) {
        assert_eq!(
            out.len(),
            self.threads() * mine.len(),
            "allgather out must hold THREADS blocks"
        );
        if let Some(p) = self.runtime().coll_provider().cloned() {
            p.allgather_words(self, mine, out);
            return;
        }
        self.allgather_words_flat(mine, out);
    }

    /// The flat reference allgather: a store-and-forward ring over all
    /// threads (`THREADS - 1` steps, one global barrier per step·chunk),
    /// double-buffered through the scratch region so a step's put never
    /// races the previous step's read.
    pub fn allgather_words_flat(&self, mine: &[u64], out: &mut [u64]) {
        let p = self.threads();
        let me = self.mythread();
        let b = mine.len();
        assert_eq!(out.len(), p * b);
        #[cfg(feature = "trace")]
        self.ctx().trace_emit(
            hupc_trace::EventKind::CollBegin,
            hupc_trace::coll::ALLGATHER,
            out.len() as u64,
        );
        out[me * b..(me + 1) * b].copy_from_slice(mine);
        if p > 1 && b > 0 {
            let scratch = self.runtime().scratch_off;
            let slot_words = HALF / 2;
            let right = (me + 1) % p;
            let mut buf = vec![0u64; b.min(slot_words)];
            let mut iter = 0usize;
            for s in 1..p {
                let send_of = (me + p + 1 - s) % p; // forwarded block owner
                let recv_of = (me + p - s) % p;
                let mut lo = 0;
                while lo < b {
                    let hi = (lo + slot_words).min(b);
                    let piece = &mut buf[..hi - lo];
                    piece.copy_from_slice(&out[send_of * b + lo..send_of * b + hi]);
                    let slot = scratch + (iter % 2) * slot_words;
                    self.memput(right, slot, piece);
                    self.barrier();
                    self.gasnet()
                        .segment(me)
                        .read(slot, &mut out[recv_of * b + lo..recv_of * b + hi]);
                    iter += 1;
                    lo = hi;
                }
            }
            // Synchronizing collective: nobody may reuse the scratch slots
            // until every thread has taken its final read.
            self.barrier();
        }
        #[cfg(feature = "trace")]
        self.ctx()
            .trace_emit(hupc_trace::EventKind::CollEnd, hupc_trace::coll::ALLGATHER, 0);
    }

    /// Group-staged barrier: arrives intra-group, synchronizes leaders over
    /// the network, then releases intra-group. Falls back to the ordinary
    /// flat barrier when no provider is installed.
    pub fn staged_barrier(&self) {
        if let Some(p) = self.runtime().coll_provider().cloned() {
            p.staged_barrier(self);
            return;
        }
        self.barrier();
    }

    /// All-to-all exchange (`upc_all_exchange`): every thread's local chunk
    /// of `src` holds `THREADS` blocks of `count` elements; block `j` lands
    /// in `dst`'s chunk on thread `j` at block position `MYTHREAD`.
    ///
    /// `blocking` selects per-put blocking (split-phase style) vs issuing
    /// all puts non-blocking and draining at the end.
    pub fn all_exchange<T: PgasElem>(
        &self,
        src: SharedArray<T>,
        dst: SharedArray<T>,
        count: usize,
        blocking: bool,
    ) {
        let p = self.threads();
        assert!(src.per_thread_elems() >= p * count, "src chunk too small");
        assert!(dst.per_thread_elems() >= p * count, "dst chunk too small");
        let block_words = count * T::WORDS;
        self.all_exchange_words(src.word_offset(), dst.word_offset(), block_words, blocking);
    }

    /// Word-level all-to-all over symmetric offsets: thread `me`'s block for
    /// thread `j` lives at `src_off + j*block_words` and lands at
    /// `dst_off + me*block_words` in `j`'s segment. Delegates to the
    /// installed provider if any.
    pub fn all_exchange_words(
        &self,
        src_off: usize,
        dst_off: usize,
        block_words: usize,
        blocking: bool,
    ) {
        if let Some(p) = self.runtime().coll_provider().cloned() {
            p.all_exchange_words(self, src_off, dst_off, block_words, blocking);
            return;
        }
        self.all_exchange_words_flat(src_off, dst_off, block_words, blocking);
    }

    /// The flat reference all-to-all: `THREADS` individual puts per thread,
    /// staggered so the targets don't all hammer thread 0 first.
    pub fn all_exchange_words_flat(
        &self,
        src_off: usize,
        dst_off: usize,
        block_words: usize,
        blocking: bool,
    ) {
        let p = self.threads();
        let me = self.mythread();
        #[cfg(feature = "trace")]
        self.ctx().trace_emit(
            hupc_trace::EventKind::CollBegin,
            hupc_trace::coll::ALL_EXCHANGE,
            (p * block_words) as u64,
        );
        let mut handles = Vec::new();
        let mut buf = vec![0u64; block_words];
        for step in 0..p {
            // Stagger targets to avoid all threads hammering thread 0 first.
            let target = (me + step) % p;
            self.gasnet()
                .segment(me)
                .read(src_off + target * block_words, &mut buf);
            let dst = dst_off + me * block_words;
            if blocking {
                self.memput(target, dst, &buf);
            } else {
                handles.push(self.memput_nb(target, dst, &buf));
            }
        }
        for h in handles {
            self.wait_sync(h);
        }
        self.barrier();
        #[cfg(feature = "trace")]
        self.ctx().trace_emit(
            hupc_trace::EventKind::CollEnd,
            hupc_trace::coll::ALL_EXCHANGE,
            0,
        );
    }
}

#[cfg(test)]
mod tests {
    use crate::runtime::{UpcConfig, UpcJob, SCRATCH_WORDS};
    // (SharedArray helpers come in via the outer scope where needed)

    #[test]
    fn broadcast_from_each_root() {
        let job = UpcJob::new(UpcConfig::test_default(4, 2));
        job.run(|upc| {
            for root in 0..4 {
                let v = if upc.mythread() == root { 42 + root as u64 } else { 0 };
                let got = upc.broadcast_word(root, v);
                assert_eq!(got, 42 + root as u64);
            }
        });
    }

    #[test]
    fn broadcast_multi_word_payload() {
        let job = UpcJob::new(UpcConfig::test_default(6, 2));
        job.run(|upc| {
            let mut payload = if upc.mythread() == 2 {
                vec![1, 2, 3, 4, 5]
            } else {
                vec![0; 5]
            };
            upc.broadcast_words(2, &mut payload);
            assert_eq!(payload, vec![1, 2, 3, 4, 5]);
        });
    }

    #[test]
    fn broadcast_at_scratch_boundary_and_beyond() {
        // Exactly the old hard ceiling (SCRATCH_WORDS / 2), one past it, and
        // a payload spanning several pipeline chunks.
        for n in [SCRATCH_WORDS / 2, SCRATCH_WORDS / 2 + 1, SCRATCH_WORDS * 2 + 7] {
            let job = UpcJob::new(UpcConfig::test_default(4, 2));
            job.run(move |upc| {
                let mut payload: Vec<u64> = if upc.mythread() == 1 {
                    (0..n as u64).map(|i| i.wrapping_mul(0x9e37_79b9)).collect()
                } else {
                    vec![0; n]
                };
                upc.broadcast_words(1, &mut payload);
                for (i, &x) in payload.iter().enumerate() {
                    assert_eq!(x, (i as u64).wrapping_mul(0x9e37_79b9), "word {i} of {n}");
                }
            });
        }
    }

    #[test]
    fn allreduce_beyond_gather_boundary_threads() {
        // More threads than gather slots (SCRATCH_WORDS / 2 = 128): the
        // wave-pipelined gather must cover ranks past the old assert.
        // threads must divide evenly over nodes: 128 = 32×4, 129 = 43×3
        for (p, nodes) in [(SCRATCH_WORDS / 2, 32), (SCRATCH_WORDS / 2 + 1, 43)] {
            let job = UpcJob::new(UpcConfig::test_default(p, nodes));
            job.run(move |upc| {
                let me = upc.mythread() as u64;
                let sum = upc.allreduce_sum_u64(me + 1);
                assert_eq!(sum, (p as u64) * (p as u64 + 1) / 2);
                let max = upc.allreduce_max_u64(me * 3);
                assert_eq!(max, (p as u64 - 1) * 3);
            });
        }
    }

    #[test]
    fn reductions() {
        let job = UpcJob::new(UpcConfig::test_default(4, 2));
        job.run(|upc| {
            let me = upc.mythread() as u64;
            assert_eq!(upc.allreduce_sum_u64(me + 1), 1 + 2 + 3 + 4);
            assert_eq!(upc.allreduce_max_u64(me * 10), 30);
            let s = upc.allreduce_sum_f64(0.5 * (me as f64 + 1.0));
            assert!((s - 5.0).abs() < 1e-12);
        });
    }

    #[test]
    fn allreduce_vector_is_element_wise() {
        let job = UpcJob::new(UpcConfig::test_default(4, 2));
        job.run(|upc| {
            let me = upc.mythread() as u64;
            let mut v = [me, 10 * me, 7];
            upc.allreduce_word_vec(&mut v, &|a, b| a.wrapping_add(b));
            assert_eq!(v, [6, 60, 28]);
        });
    }

    #[test]
    fn allgather_collects_blocks_in_thread_order() {
        for b in [1usize, 3, 70, 200] {
            let job = UpcJob::new(UpcConfig::test_default(4, 2));
            job.run(move |upc| {
                let me = upc.mythread() as u64;
                let mine: Vec<u64> = (0..b as u64).map(|i| me * 1000 + i).collect();
                let mut out = vec![0u64; 4 * b];
                upc.allgather_words(&mine, &mut out);
                for t in 0..4u64 {
                    for i in 0..b as u64 {
                        assert_eq!(out[(t as usize) * b + i as usize], t * 1000 + i);
                    }
                }
            });
        }
    }

    #[test]
    fn exchange_transposes_blocks() {
        let job = UpcJob::new(UpcConfig::test_default(4, 2));
        let src = job.alloc_shared::<u64>(4 * 4 * 2, 8); // 2 elems × 4 blocks × 4 threads
        let dst = job.alloc_shared::<u64>(4 * 4 * 2, 8);
        job.run(move |upc| {
            let me = upc.mythread();
            // src block j on thread me = [me*100 + j*10, +1]
            src.with_local_words(&upc, |w| {
                for j in 0..4 {
                    w[j * 2] = (me * 100 + j * 10) as u64;
                    w[j * 2 + 1] = (me * 100 + j * 10 + 1) as u64;
                }
            });
            upc.barrier();
            upc.all_exchange(src, dst, 2, false);
            // dst block j on thread me must be thread j's block me
            dst.with_local_words(&upc, |w| {
                for j in 0..4 {
                    assert_eq!(w[j * 2], (j * 100 + me * 10) as u64);
                    assert_eq!(w[j * 2 + 1], (j * 100 + me * 10 + 1) as u64);
                }
            });
        });
    }

    #[test]
    fn exchange_blocking_matches_nonblocking_data() {
        for blocking in [true, false] {
            let job = UpcJob::new(UpcConfig::test_default(2, 2));
            let src = job.alloc_shared::<u64>(2 * 2 * 3, 6);
            let dst = job.alloc_shared::<u64>(2 * 2 * 3, 6);
            job.run(move |upc| {
                let me = upc.mythread();
                src.with_local_words(&upc, |w| {
                    for (i, x) in w.iter_mut().enumerate() {
                        *x = (me * 1000 + i) as u64;
                    }
                });
                upc.barrier();
                upc.all_exchange(src, dst, 3, blocking);
                dst.with_local_words(&upc, |w| {
                    for j in 0..2 {
                        for e in 0..3 {
                            assert_eq!(w[j * 3 + e], (j * 1000 + me * 3 + e) as u64);
                        }
                    }
                });
            });
        }
    }
}
