//! Collective operations: broadcast, reductions, and all-to-all exchange.
//!
//! UPC 1.2 ships these in `upc_collective.h`; the thesis additionally leans
//! on hand-written point-to-point exchanges (its FT all-to-all). Here the
//! collectives are built from the same one-sided primitives a UPC programmer
//! would use, so their modeled cost is the sum of the underlying puts/gets
//! plus barriers.

use crate::elem::PgasElem;
use crate::runtime::{Upc, SCRATCH_WORDS};
use crate::shared::SharedArray;

impl<'a> Upc<'a> {
    /// Broadcast `words` from `root` to every thread (in place). Gather-free
    /// binomial tree: log₂(THREADS) rounds of puts, one barrier per round.
    pub fn broadcast_words(&self, root: usize, words: &mut [u64]) {
        let p = self.threads();
        let me = self.mythread();
        assert!(words.len() <= SCRATCH_WORDS / 2, "broadcast exceeds scratch");
        #[cfg(feature = "trace")]
        self.ctx().trace_emit(
            hupc_trace::EventKind::CollBegin,
            hupc_trace::coll::BROADCAST,
            words.len() as u64,
        );
        let scratch = self.runtime().scratch_off;
        // Rotate ranks so root is rank 0.
        let rel = (me + p - root) % p;
        if rel == 0 {
            self.gasnet().segment(me).write(scratch, words);
        }
        let mut stride = 1;
        while stride < p {
            self.barrier();
            if rel < stride && rel + stride < p {
                let target = (root + rel + stride) % p;
                let mut buf = vec![0u64; words.len()];
                self.gasnet().segment(me).read(scratch, &mut buf);
                self.memput(target, scratch, &buf);
            }
            stride <<= 1;
        }
        self.barrier();
        self.gasnet().segment(me).read(scratch, words);
        #[cfg(feature = "trace")]
        self.ctx()
            .trace_emit(hupc_trace::EventKind::CollEnd, hupc_trace::coll::BROADCAST, 0);
    }

    /// Broadcast one word from `root`.
    pub fn broadcast_word(&self, root: usize, v: u64) -> u64 {
        let mut w = [v];
        self.broadcast_words(root, &mut w);
        w[0]
    }

    /// All-reduce a word with a combining function (must be associative and
    /// commutative). Gather-to-root then broadcast; cost is `THREADS` puts
    /// into the root plus the broadcast tree.
    pub fn allreduce_words<F>(&self, v: u64, combine: F) -> u64
    where
        F: Fn(u64, u64) -> u64,
    {
        let p = self.threads();
        let me = self.mythread();
        assert!(p <= SCRATCH_WORDS / 2, "too many threads for scratch gather");
        #[cfg(feature = "trace")]
        self.ctx()
            .trace_emit(hupc_trace::EventKind::CollBegin, hupc_trace::coll::ALLREDUCE, 1);
        let gather = self.runtime().scratch_off + SCRATCH_WORDS / 2;
        self.memput(0, gather + me, &[v]);
        self.barrier();
        let result = if me == 0 {
            let mut all = vec![0u64; p];
            self.gasnet().segment(0).read(gather, &mut all);
            let mut acc = all[0];
            for &x in &all[1..] {
                acc = combine(acc, x);
            }
            acc
        } else {
            0
        };
        let r = self.broadcast_word(0, result);
        #[cfg(feature = "trace")]
        self.ctx()
            .trace_emit(hupc_trace::EventKind::CollEnd, hupc_trace::coll::ALLREDUCE, 0);
        r
    }

    /// All-reduce an `f64` sum.
    pub fn allreduce_sum_f64(&self, v: f64) -> f64 {
        // Gather raw bits; combine as floats at the root for determinism.
        let p = self.threads();
        let me = self.mythread();
        assert!(p <= SCRATCH_WORDS / 2);
        let gather = self.runtime().scratch_off + SCRATCH_WORDS / 2;
        self.memput(0, gather + me, &[v.to_bits()]);
        self.barrier();
        let result = if me == 0 {
            let mut all = vec![0u64; p];
            self.gasnet().segment(0).read(gather, &mut all);
            all.iter().map(|&b| f64::from_bits(b)).sum::<f64>()
        } else {
            0.0
        };
        f64::from_bits(self.broadcast_word(0, result.to_bits()))
    }

    /// All-reduce a `u64` sum.
    pub fn allreduce_sum_u64(&self, v: u64) -> u64 {
        self.allreduce_words(v, |a, b| a.wrapping_add(b))
    }

    /// All-reduce a `u64` max.
    pub fn allreduce_max_u64(&self, v: u64) -> u64 {
        self.allreduce_words(v, u64::max)
    }

    /// All-to-all exchange (`upc_all_exchange`): every thread's local chunk
    /// of `src` holds `THREADS` blocks of `count` elements; block `j` lands
    /// in `dst`'s chunk on thread `j` at block position `MYTHREAD`.
    ///
    /// `blocking` selects per-put blocking (split-phase style) vs issuing
    /// all puts non-blocking and draining at the end.
    pub fn all_exchange<T: PgasElem>(
        &self,
        src: SharedArray<T>,
        dst: SharedArray<T>,
        count: usize,
        blocking: bool,
    ) {
        let p = self.threads();
        let me = self.mythread();
        assert!(src.per_thread_elems() >= p * count, "src chunk too small");
        assert!(dst.per_thread_elems() >= p * count, "dst chunk too small");
        let wpe = T::WORDS;
        #[cfg(feature = "trace")]
        self.ctx().trace_emit(
            hupc_trace::EventKind::CollBegin,
            hupc_trace::coll::ALL_EXCHANGE,
            (p * count * wpe) as u64,
        );
        let mut handles = Vec::new();
        for step in 0..p {
            // Stagger targets to avoid all threads hammering thread 0 first.
            let target = (me + step) % p;
            let mut buf = vec![0u64; count * wpe];
            self.gasnet()
                .segment(me)
                .read(src.word_offset() + target * count * wpe, &mut buf);
            let dst_off = dst.word_offset() + me * count * wpe;
            if blocking {
                self.memput(target, dst_off, &buf);
            } else {
                handles.push(self.memput_nb(target, dst_off, &buf));
            }
        }
        for h in handles {
            self.wait_sync(h);
        }
        self.barrier();
        #[cfg(feature = "trace")]
        self.ctx().trace_emit(
            hupc_trace::EventKind::CollEnd,
            hupc_trace::coll::ALL_EXCHANGE,
            0,
        );
    }
}

#[cfg(test)]
mod tests {
    use crate::runtime::{UpcConfig, UpcJob};
    // (SharedArray helpers come in via the outer scope where needed)

    #[test]
    fn broadcast_from_each_root() {
        let job = UpcJob::new(UpcConfig::test_default(4, 2));
        job.run(|upc| {
            for root in 0..4 {
                let v = if upc.mythread() == root { 42 + root as u64 } else { 0 };
                let got = upc.broadcast_word(root, v);
                assert_eq!(got, 42 + root as u64);
            }
        });
    }

    #[test]
    fn broadcast_multi_word_payload() {
        let job = UpcJob::new(UpcConfig::test_default(6, 2));
        job.run(|upc| {
            let mut payload = if upc.mythread() == 2 {
                vec![1, 2, 3, 4, 5]
            } else {
                vec![0; 5]
            };
            upc.broadcast_words(2, &mut payload);
            assert_eq!(payload, vec![1, 2, 3, 4, 5]);
        });
    }

    #[test]
    fn reductions() {
        let job = UpcJob::new(UpcConfig::test_default(4, 2));
        job.run(|upc| {
            let me = upc.mythread() as u64;
            assert_eq!(upc.allreduce_sum_u64(me + 1), 1 + 2 + 3 + 4);
            assert_eq!(upc.allreduce_max_u64(me * 10), 30);
            let s = upc.allreduce_sum_f64(0.5 * (me as f64 + 1.0));
            assert!((s - 5.0).abs() < 1e-12);
        });
    }

    #[test]
    fn exchange_transposes_blocks() {
        let job = UpcJob::new(UpcConfig::test_default(4, 2));
        let src = job.alloc_shared::<u64>(4 * 4 * 2, 8); // 2 elems × 4 blocks × 4 threads
        let dst = job.alloc_shared::<u64>(4 * 4 * 2, 8);
        job.run(move |upc| {
            let me = upc.mythread();
            // src block j on thread me = [me*100 + j*10, +1]
            src.with_local_words(&upc, |w| {
                for j in 0..4 {
                    w[j * 2] = (me * 100 + j * 10) as u64;
                    w[j * 2 + 1] = (me * 100 + j * 10 + 1) as u64;
                }
            });
            upc.barrier();
            upc.all_exchange(src, dst, 2, false);
            // dst block j on thread me must be thread j's block me
            dst.with_local_words(&upc, |w| {
                for j in 0..4 {
                    assert_eq!(w[j * 2], (j * 100 + me * 10) as u64);
                    assert_eq!(w[j * 2 + 1], (j * 100 + me * 10 + 1) as u64);
                }
            });
        });
    }

    #[test]
    fn exchange_blocking_matches_nonblocking_data() {
        for blocking in [true, false] {
            let job = UpcJob::new(UpcConfig::test_default(2, 2));
            let src = job.alloc_shared::<u64>(2 * 2 * 3, 6);
            let dst = job.alloc_shared::<u64>(2 * 2 * 3, 6);
            job.run(move |upc| {
                let me = upc.mythread();
                src.with_local_words(&upc, |w| {
                    for (i, x) in w.iter_mut().enumerate() {
                        *x = (me * 1000 + i) as u64;
                    }
                });
                upc.barrier();
                upc.all_exchange(src, dst, 3, blocking);
                dst.with_local_words(&upc, |w| {
                    for j in 0..2 {
                        for e in 0..3 {
                            assert_eq!(w[j * 3 + e], (j * 1000 + me * 3 + e) as u64);
                        }
                    }
                });
            });
        }
    }
}
