//! Block-cyclic shared arrays — the `shared [B] T a[N]` of UPC — plus
//! privatized (cast) views.

use std::marker::PhantomData;

use hupc_gasnet::{AccessPath, WORD_BYTES};

use crate::elem::PgasElem;
use crate::runtime::{Upc, UpcRuntime};

/// A distributed array over the PGAS with UPC's block-cyclic layout:
/// element `i` lives in block `i / B`, and blocks round-robin over threads.
///
/// The handle is `Copy` and captures only layout; all access goes through a
/// [`Upc`] view. Fine-grained `get`/`put` defer their modeled costs (see the
/// crate docs); bulk and cast access charge directly.
pub struct SharedArray<T> {
    off: usize,
    n: usize,
    block: usize,
    threads: usize,
    per_thread_elems: usize,
    _elem: PhantomData<fn() -> T>,
}

impl<T> Clone for SharedArray<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SharedArray<T> {}

impl<T: PgasElem> SharedArray<T> {
    /// Allocate `shared [block] T a[n]`. `block == 0` means `[*]`
    /// (fully blocked: one contiguous chunk per thread).
    pub(crate) fn allocate(rt: &UpcRuntime, n: usize, block: usize) -> Self {
        assert!(n > 0, "empty shared arrays are not allocatable");
        let threads = rt.gasnet().n_threads();
        let block = if block == 0 { n.div_ceil(threads) } else { block };
        let blocks_total = n.div_ceil(block);
        let blocks_per_thread = blocks_total.div_ceil(threads);
        let per_thread_elems = blocks_per_thread * block;
        let off = rt.alloc_words(per_thread_elems * T::WORDS);
        SharedArray {
            off,
            n,
            block,
            threads,
            per_thread_elems,
            _elem: PhantomData,
        }
    }

    /// Total elements.
    pub fn len(&self) -> usize {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Block size (elements).
    pub fn block(&self) -> usize {
        self.block
    }

    /// Elements resident on each thread (padding included).
    pub fn per_thread_elems(&self) -> usize {
        self.per_thread_elems
    }

    /// Word offset of this array in every thread's segment.
    pub fn word_offset(&self) -> usize {
        self.off
    }

    /// Thread with affinity to element `i`.
    pub fn owner(&self, i: usize) -> usize {
        debug_assert!(i < self.n, "index {i} out of bounds {}", self.n);
        (i / self.block) % self.threads
    }

    /// Element offset within the owner's local chunk.
    pub fn local_index(&self, i: usize) -> usize {
        (i / self.block) / self.threads * self.block + i % self.block
    }

    /// Word offset (within the owner's segment) of element `i`.
    pub fn word_of(&self, i: usize) -> usize {
        self.off + self.local_index(i) * T::WORDS
    }

    /// Indices with affinity to `me`, ascending — the index set
    /// `upc_forall(i; …; &a[i])` gives that thread.
    pub fn indices_with_affinity(&self, me: usize) -> impl Iterator<Item = usize> + '_ {
        let block = self.block;
        let threads = self.threads;
        let n = self.n;
        (me * block..n)
            .step_by(block * threads)
            .flat_map(move |start| start..(start + block).min(n))
    }

    // ----- fine-grained access (deferred costs) ------------------------------

    /// `T v = a[i]` — a shared read through a pointer-to-shared.
    /// Decodes straight from the owner's segment, so any `T::WORDS` works
    /// (no fixed-size bounce buffer).
    pub fn get(&self, upc: &Upc<'_>, i: usize) -> T {
        let o = self.owner(i);
        let w = self.word_of(i);
        let me = upc.mythread();
        match upc.gasnet().path(me, o) {
            AccessPath::Local | AccessPath::SameProcess | AccessPath::Pshm => {
                upc.note_translation(1);
                upc.note_socket_traffic(upc.segment_home(o), (T::WORDS * WORD_BYTES) as u64);
                upc.gasnet().segment(o).with_range(w, T::WORDS, T::from_words)
            }
            // Fine-grained remote access: full message cost, immediately.
            _ => upc.memget_with(o, w, T::WORDS, T::from_words),
        }
    }

    /// `a[i] = v` — a shared write through a pointer-to-shared.
    pub fn put(&self, upc: &Upc<'_>, i: usize, v: T) {
        let o = self.owner(i);
        let w = self.word_of(i);
        let me = upc.mythread();
        match upc.gasnet().path(me, o) {
            AccessPath::Local | AccessPath::SameProcess | AccessPath::Pshm => {
                upc.note_translation(1);
                upc.note_socket_traffic(upc.segment_home(o), (T::WORDS * WORD_BYTES) as u64);
                upc.gasnet()
                    .segment(o)
                    .with_range_mut(w, T::WORDS, |words| v.to_words(words));
            }
            _ => upc.memput_with(o, w, T::WORDS, |words| v.to_words(words)),
        }
    }

    /// Initialize element `i` without charging model time (program setup,
    /// like static initializers that the benchmarks don't time).
    pub fn poke(&self, upc: &Upc<'_>, i: usize, v: T) {
        upc.gasnet()
            .segment(self.owner(i))
            .with_range_mut(self.word_of(i), T::WORDS, |words| v.to_words(words));
    }

    /// Read element `i` without charging model time (verification).
    pub fn peek(&self, upc: &Upc<'_>, i: usize) -> T {
        upc.gasnet()
            .segment(self.owner(i))
            .with_range(self.word_of(i), T::WORDS, T::from_words)
    }

    // ----- privatized / bulk access --------------------------------------------

    /// Scoped access to this thread's own chunk, as raw words. Free of
    /// software cost (a privatized local pointer); the caller charges memory
    /// traffic explicitly if the access is being timed.
    pub fn with_local_words<R>(&self, upc: &Upc<'_>, f: impl FnOnce(&mut [u64]) -> R) -> R {
        let me = upc.mythread();
        upc.gasnet()
            .segment(me)
            .with_range_mut(self.off, self.per_thread_elems * T::WORDS, f)
    }

    /// Scoped access to `owner`'s chunk through a cast local pointer
    /// (`bupc_cast`, §3.2.1). Panics if `owner` is not castable from this
    /// thread — the NULL-return case of the real extension.
    pub fn with_cast_words<R>(
        &self,
        upc: &Upc<'_>,
        owner: usize,
        f: impl FnOnce(&mut [u64]) -> R,
    ) -> R {
        assert!(
            upc.gasnet().castable(upc.mythread(), owner),
            "bupc_cast: thread {owner} does not share memory with {}",
            upc.mythread()
        );
        upc.gasnet()
            .segment(owner)
            .with_range_mut(self.off, self.per_thread_elems * T::WORDS, f)
    }

    /// Bulk-read `count` elements starting at global index `i` (which must
    /// lie within one owner's block range) via `upc_memget`.
    ///
    /// Delegates to [`SharedArray::memget_elems_into`]; prefer that variant
    /// in loops so the output allocation is reused too.
    pub fn memget_elems(&self, upc: &Upc<'_>, i: usize, count: usize) -> Vec<T> {
        let mut out = Vec::new();
        self.memget_elems_into(upc, i, count, &mut out);
        out
    }

    /// Bulk-read `count` elements starting at global index `i` (single-owner
    /// range) into `out`, which is cleared first. Decodes straight from the
    /// source segment — no intermediate word buffer — and charges exactly as
    /// a `upc_memget` of `count * T::WORDS` words.
    pub fn memget_elems_into(&self, upc: &Upc<'_>, i: usize, count: usize, out: &mut Vec<T>) {
        let o = self.owner(i);
        debug_assert!(
            count <= self.block - i % self.block || self.block >= self.n,
            "memget_elems range crosses a block boundary"
        );
        out.clear();
        out.reserve(count);
        upc.memget_with(o, self.word_of(i), count * T::WORDS, |words| {
            out.extend(words.chunks_exact(T::WORDS).map(T::from_words));
        });
    }

    /// Bulk-write elements starting at global index `i` (single-owner range)
    /// via `upc_memput`. Delegates to [`SharedArray::memput_elems_from`].
    pub fn memput_elems(&self, upc: &Upc<'_>, i: usize, vals: &[T]) {
        self.memput_elems_from(upc, i, vals);
    }

    /// Bulk-write `vals` starting at global index `i` (single-owner range),
    /// encoding straight into the destination segment — no intermediate word
    /// buffer — and charging exactly as a `upc_memput` of
    /// `vals.len() * T::WORDS` words.
    pub fn memput_elems_from(&self, upc: &Upc<'_>, i: usize, vals: &[T]) {
        let o = self.owner(i);
        upc.memput_with(o, self.word_of(i), vals.len() * T::WORDS, |words| {
            for (v, chunk) in vals.iter().zip(words.chunks_exact_mut(T::WORDS)) {
                v.to_words(chunk);
            }
        });
    }

    /// Scoped read-only word view of `count` elements starting at global
    /// index `i` (single-owner range), charged as the equivalent
    /// `upc_memget`. The zero-copy dual of [`SharedArray::memget_elems_into`]
    /// for callers that consume words directly (e.g. unpack kernels). The
    /// closure runs under the owner segment's borrow: no UPC calls, no other
    /// access to that segment inside it.
    pub fn with_remote_range<R>(
        &self,
        upc: &Upc<'_>,
        i: usize,
        count: usize,
        f: impl FnOnce(&[u64]) -> R,
    ) -> R {
        let o = self.owner(i);
        debug_assert!(
            count <= self.block - i % self.block || self.block >= self.n,
            "with_remote_range crosses a block boundary"
        );
        upc.memget_with(o, self.word_of(i), count * T::WORDS, f)
    }
}

impl<T> std::fmt::Debug for SharedArray<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedArray")
            .field("len", &self.n)
            .field("block", &self.block)
            .field("threads", &self.threads)
            .field("word_offset", &self.off)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use crate::elem::PgasElem;
    use crate::runtime::{UpcConfig, UpcJob};

    #[test]
    fn layout_round_robin_block_1() {
        let job = UpcJob::new(UpcConfig::test_default(4, 1));
        let a = job.alloc_shared::<f64>(10, 1);
        assert_eq!(a.owner(0), 0);
        assert_eq!(a.owner(1), 1);
        assert_eq!(a.owner(5), 1);
        assert_eq!(a.local_index(5), 1);
        assert_eq!(a.local_index(9), 2);
    }

    #[test]
    fn layout_blocked() {
        let job = UpcJob::new(UpcConfig::test_default(4, 1));
        let a = job.alloc_shared::<f64>(16, 0); // [*] → block 4
        assert_eq!(a.block(), 4);
        assert_eq!(a.owner(0), 0);
        assert_eq!(a.owner(3), 0);
        assert_eq!(a.owner(4), 1);
        assert_eq!(a.owner(15), 3);
        assert_eq!(a.local_index(15), 3);
    }

    #[test]
    fn affinity_indices_partition_the_array() {
        let job = UpcJob::new(UpcConfig::test_default(3, 1));
        let a = job.alloc_shared::<u64>(17, 2);
        let mut all: Vec<usize> = (0..3).flat_map(|t| a.indices_with_affinity(t)).collect();
        all.sort_unstable();
        assert_eq!(all, (0..17).collect::<Vec<_>>());
        // ownership is consistent with the iterator
        for t in 0..3 {
            for i in a.indices_with_affinity(t) {
                assert_eq!(a.owner(i), t, "index {i}");
            }
        }
    }

    #[test]
    fn get_put_round_trip_spmd() {
        let job = UpcJob::new(UpcConfig::test_default(4, 2));
        let a = job.alloc_shared::<f64>(64, 4);
        job.run(move |upc| {
            let me = upc.mythread();
            for i in a.indices_with_affinity(me) {
                a.put(&upc, i, (i * i) as f64);
            }
            upc.barrier();
            // every thread reads the whole array, including remote parts
            for i in 0..64 {
                assert_eq!(a.get(&upc, i), (i * i) as f64, "a[{i}]");
            }
        });
    }

    #[test]
    fn cast_view_requires_shared_memory() {
        let job = UpcJob::new(UpcConfig::test_default(4, 2));
        let a = job.alloc_shared::<u64>(8, 1);
        job.run(move |upc| {
            let me = upc.mythread();
            // threads 0,1 share node 0; 2,3 share node 1
            let peer_same = me ^ 1;
            assert!(upc.gasnet().castable(me, peer_same));
            a.with_cast_words(&upc, peer_same, |w| {
                w[0] = 777 + me as u64;
            });
            upc.barrier();
            a.with_local_words(&upc, |w| {
                assert_eq!(w[0], 777 + (me ^ 1) as u64);
            });
        });
    }

    #[test]
    fn bulk_elem_transfers() {
        let job = UpcJob::new(UpcConfig::test_default(2, 1));
        let a = job.alloc_shared::<[f64; 2]>(8, 4);
        job.run(move |upc| {
            if upc.mythread() == 0 {
                a.memput_elems(&upc, 4, &[[1.0, 2.0], [3.0, 4.0]]); // thread 1's block
            }
            upc.barrier();
            if upc.mythread() == 1 {
                let v = a.memget_elems(&upc, 4, 2);
                assert_eq!(v, vec![[1.0, 2.0], [3.0, 4.0]]);
            }
        });
    }

    #[test]
    fn wide_elements_round_trip_spmd() {
        // >4 words per element: the old fixed `[0u64; 4]` bounce buffers
        // would have truncated (or panicked on) these. 2 nodes so both the
        // shared-memory and network paths are exercised.
        let job = UpcJob::new(UpcConfig::test_default(4, 2));
        let a = job.alloc_shared::<[u64; 8]>(16, 2);
        job.run(move |upc| {
            let me = upc.mythread();
            for i in a.indices_with_affinity(me) {
                a.put(&upc, i, std::array::from_fn(|k| (i * 10 + k) as u64));
            }
            upc.barrier();
            for i in 0..16 {
                let want: [u64; 8] = std::array::from_fn(|k| (i * 10 + k) as u64);
                assert_eq!(a.get(&upc, i), want, "a[{i}]");
            }
            // bulk path too
            if me == 0 {
                let mut got = Vec::new();
                a.memget_elems_into(&upc, 2, 2, &mut got);
                assert_eq!(got[0][7], 27);
                assert_eq!(got[1][0], 30);
            }
        });
    }

    #[test]
    fn bulk_into_matches_byval_values_and_virtual_time() {
        // The zero-copy bulk path must be observationally identical to the
        // historical Vec-of-words round trip: same values AND the same
        // charged virtual time, end to end. Pin both across a network hop.
        fn run(zero_copy: bool) -> (u64, Vec<[f64; 2]>) {
            let job = UpcJob::new(UpcConfig::test_default(2, 2)); // network path
            let a = job.alloc_shared::<[f64; 2]>(32, 16);
            let (stats, vals) = job.run_collecting(move |upc| {
                let me = upc.mythread();
                for i in a.indices_with_affinity(me) {
                    a.poke(&upc, i, [i as f64, -(i as f64)]);
                }
                upc.barrier();
                if me != 0 {
                    upc.barrier();
                    return None;
                }
                let got = if zero_copy {
                    let mut out = Vec::new();
                    for _ in 0..4 {
                        a.memget_elems_into(&upc, 16, 16, &mut out);
                    }
                    a.memput_elems_from(&upc, 16, &out);
                    out
                } else {
                    // The pre-zero-copy implementation, inlined: explicit
                    // word staging through memget/memput.
                    let mut out = Vec::new();
                    for _ in 0..4 {
                        let mut words = vec![0u64; 32];
                        upc.memget(1, a.word_of(16), &mut words);
                        out = words.chunks_exact(2).map(<[f64; 2]>::from_words).collect();
                    }
                    let mut words = vec![0u64; 32];
                    for (v, chunk) in out.iter().zip(words.chunks_exact_mut(2)) {
                        v.to_words(chunk);
                    }
                    upc.memput(1, a.word_of(16), &words);
                    out
                };
                upc.barrier();
                Some(got)
            });
            (stats.end_time, vals)
        }
        let (t_old, v_old) = run(false);
        let (t_new, v_new) = run(true);
        assert_eq!(v_old, v_new, "bulk values diverged");
        assert_eq!(t_old, t_new, "zero-copy bulk path changed virtual time");
        assert_eq!(v_old[15], [31.0, -31.0]);
    }

    #[test]
    fn fine_grained_remote_access_is_expensive() {
        let job = UpcJob::new(UpcConfig::test_default(2, 2)); // 1 thread/node
        let a = job.alloc_shared::<f64>(4, 1);
        job.run(move |upc| {
            if upc.mythread() == 0 {
                a.poke(&upc, 1, 9.0);
            }
            upc.barrier();
            if upc.mythread() == 1 {
                let t0 = upc.now();
                let _ = a.get(&upc, 0); // remote element: full RTT
                let rt = upc.now() - t0;
                assert!(rt > hupc_sim::time::us(2), "remote get took {rt}ns");
            }
        });
    }

    #[test]
    #[should_panic(expected = "bupc_cast")]
    fn cast_across_nodes_panics() {
        let job = UpcJob::new(UpcConfig::test_default(2, 2));
        let a = job.alloc_shared::<u64>(4, 1);
        job.run(move |upc| {
            if upc.mythread() == 0 {
                a.with_cast_words(&upc, 1, |_| {});
            }
        });
    }
}
