//! Element types storable in the partitioned global address space.
//!
//! The PGAS is word-granular (`u64`, see `hupc-gasnet`); a `PgasElem` knows
//! how to pack itself into a fixed number of words. All conversions are bit
//! casts — no allocation, no precision loss.

/// A fixed-size value that can live in shared memory.
pub trait PgasElem: Copy + Send + 'static {
    /// Words this element occupies.
    const WORDS: usize;

    /// Serialize into exactly `Self::WORDS` words.
    fn to_words(self, out: &mut [u64]);

    /// Deserialize from exactly `Self::WORDS` words.
    fn from_words(words: &[u64]) -> Self;
}

impl PgasElem for u64 {
    const WORDS: usize = 1;

    #[inline]
    fn to_words(self, out: &mut [u64]) {
        out[0] = self;
    }

    #[inline]
    fn from_words(words: &[u64]) -> Self {
        words[0]
    }
}

impl PgasElem for i64 {
    const WORDS: usize = 1;

    #[inline]
    fn to_words(self, out: &mut [u64]) {
        out[0] = self as u64;
    }

    #[inline]
    fn from_words(words: &[u64]) -> Self {
        words[0] as i64
    }
}

impl PgasElem for f64 {
    const WORDS: usize = 1;

    #[inline]
    fn to_words(self, out: &mut [u64]) {
        out[0] = self.to_bits();
    }

    #[inline]
    fn from_words(words: &[u64]) -> Self {
        f64::from_bits(words[0])
    }
}

/// `double complex`: the element type of the NAS FT grids.
impl PgasElem for [f64; 2] {
    const WORDS: usize = 2;

    #[inline]
    fn to_words(self, out: &mut [u64]) {
        out[0] = self[0].to_bits();
        out[1] = self[1].to_bits();
    }

    #[inline]
    fn from_words(words: &[u64]) -> Self {
        [f64::from_bits(words[0]), f64::from_bits(words[1])]
    }
}

/// Wide word-array elements (structs larger than a couple of scalars).
/// The data plane copies straight to/from segment ranges, so element width
/// is unbounded — these exercise the >4-word case the old fixed bounce
/// buffers could not hold.
macro_rules! pgas_u64_array {
    ($($n:literal),*) => {$(
        impl PgasElem for [u64; $n] {
            const WORDS: usize = $n;

            #[inline]
            fn to_words(self, out: &mut [u64]) {
                out.copy_from_slice(&self);
            }

            #[inline]
            fn from_words(words: &[u64]) -> Self {
                words.try_into().expect("exactly WORDS words")
            }
        }
    )*};
}

pgas_u64_array!(2, 4, 8);

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: PgasElem + PartialEq + std::fmt::Debug>(v: T) {
        let mut buf = vec![0u64; T::WORDS];
        v.to_words(&mut buf);
        assert_eq!(T::from_words(&buf), v);
    }

    #[test]
    fn scalars_round_trip() {
        round_trip(0u64);
        round_trip(u64::MAX);
        round_trip(-42i64);
        round_trip(i64::MIN);
        round_trip(-0.0f64);
        round_trip(1.5e-300f64);
    }

    #[test]
    fn complex_round_trips() {
        round_trip([1.25f64, -3.5f64]);
        round_trip([u64::MAX, 0u64]);
    }

    #[test]
    fn wide_arrays_round_trip() {
        round_trip([1u64, 2, 3, 4]);
        round_trip([u64::MAX, 0, 7, 9, 11, 13, 15, 17]);
        assert_eq!(<[u64; 8]>::WORDS, 8);
    }

    #[test]
    fn nan_bits_preserved() {
        let v = f64::from_bits(0x7ff8_dead_beef_0001);
        let mut buf = [0u64];
        v.to_words(&mut buf);
        assert_eq!(buf[0], 0x7ff8_dead_beef_0001);
    }
}
