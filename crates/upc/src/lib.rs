//! `hupc-upc` — the UPC language runtime: SPMD execution, the partitioned
//! global address space, shared arrays and pointers, privatization,
//! collectives and locks.
//!
//! This crate is the Rust analogue of the Berkeley UPC runtime the thesis
//! builds on. A UPC program is a closure run SPMD-style by `THREADS` actors:
//!
//! ```
//! use hupc_upc::{UpcConfig, UpcJob};
//!
//! let job = UpcJob::new(UpcConfig::test_default(4, 2));
//! let a = job.alloc_shared::<f64>(100, 1); // shared [1] double a[100]
//! job.run(move |upc| {
//!     // round-robin affinity: thread 0 owns 0, 4, 8, …
//!     for i in a.indices_with_affinity(upc.mythread()) {
//!         a.put(&upc, i, i as f64);
//!     }
//!     upc.barrier();
//!     if upc.mythread() == 0 {
//!         assert_eq!(a.get(&upc, 42), 42.0);
//!     }
//! });
//! ```
//!
//! ## Cost accounting
//!
//! Fine-grained shared accesses (`get`/`put` on a [`SharedArray`]) move real
//! data immediately but *accumulate* their modeled costs — pointer-to-shared
//! translation on the CPU, word traffic on the home memory controller — in
//! per-thread counters that are flushed to the simulation clock at barriers
//! (or explicitly via [`Upc::flush_access_costs`]). This keeps the event
//! count independent of the element count while preserving the aggregate
//! timing the thesis measures (Table 3.1's 3.2 vs 23.2 GB/s gap *is* this
//! translation charge).
//!
//! Bulk operations (`memput`/`memget`/`memcpy`, privatized
//! [`SharedArray::with_cast_words`] views) follow the backend-dependent
//! paths of `hupc-gasnet` directly.

mod coll;
mod elem;
mod lock;
mod runtime;
mod shared;

pub use elem::PgasElem;
pub use lock::UpcLock;
pub use runtime::{
    in_subthread_context, set_subthread_context, CollProvider, ThreadSafety, Upc, UpcConfig,
    UpcJob, UpcRuntime, SCRATCH_WORDS,
};
pub use shared::SharedArray;

// Re-exports the rest of the stack commonly needs alongside this crate.
pub use hupc_gasnet::{
    AccessPath, Backend, CommError, FaultPlan, Gasnet, GasnetConfig, Handle, Jitter,
    Overheads, RetryPolicy,
};
pub use hupc_net::Conduit;
pub use hupc_sim::{time, Ctx, SimulationStats, Time};
pub use hupc_topo::{BindPolicy, MachineSpec};
