//! `upc_lock_t`: global locks with affinity, used by the UTS steal-stacks.
//!
//! Acquiring a lock whose home is remote costs a network round trip (the
//! lock state lives in the home thread's partition); local acquisition is a
//! few hundred nanoseconds of software. Fairness is FIFO.

use hupc_sim::{time, Kernel, MutexId, Time};

use crate::runtime::{Upc, UpcRuntime};

/// Software cost of an uncontended local lock operation.
const LOCAL_LOCK_COST: Time = time::ns(150);

/// A UPC lock. `Copy` handle; state lives in the simulation kernel.
#[derive(Clone, Copy, Debug)]
pub struct UpcLock {
    mutex: MutexId,
    home: usize,
}

impl UpcLock {
    pub(crate) fn allocate(kernel: &mut Kernel, _rt: &UpcRuntime, home: usize) -> Self {
        UpcLock {
            mutex: kernel.new_mutex(),
            home,
        }
    }

    /// Thread the lock has affinity to.
    pub fn home(&self) -> usize {
        self.home
    }

    /// The per-operation messaging cost for `me`: free-ish locally, a round
    /// trip remotely.
    fn op_cost(&self, upc: &Upc<'_>) -> Time {
        let me = upc.mythread();
        if upc.gasnet().castable(me, self.home) {
            LOCAL_LOCK_COST
        } else {
            let c = upc.gasnet().fabric().conduit();
            // CAS-style remote atomic: request + response.
            2 * (c.wire_latency + c.send_overhead) + c.conn_gap
        }
    }

    /// Whether the lock's home partition is memory-reachable from `me`.
    #[cfg(feature = "trace")]
    fn is_local_for(&self, upc: &Upc<'_>) -> bool {
        upc.gasnet().castable(upc.mythread(), self.home)
    }

    /// `upc_lock`.
    pub fn lock(&self, upc: &Upc<'_>) {
        upc.ctx().advance(self.op_cost(upc));
        upc.ctx().mutex_lock(self.mutex);
        #[cfg(feature = "trace")]
        {
            upc.ctx().trace_emit(
                hupc_trace::EventKind::LockAcquire,
                self.home as u64,
                self.is_local_for(upc) as u64,
            );
            upc.trace_count("upc.locks", 1);
        }
    }

    /// `upc_lock_attempt`: try without blocking. Costs a message either way.
    pub fn try_lock(&self, upc: &Upc<'_>) -> bool {
        upc.ctx().advance(self.op_cost(upc));
        let got = upc.ctx().mutex_try_lock(self.mutex);
        #[cfg(feature = "trace")]
        if got {
            upc.ctx().trace_emit(
                hupc_trace::EventKind::LockAcquire,
                self.home as u64,
                self.is_local_for(upc) as u64,
            );
            upc.trace_count("upc.locks", 1);
        }
        got
    }

    /// `upc_unlock`.
    pub fn unlock(&self, upc: &Upc<'_>) {
        upc.ctx().advance(self.op_cost(upc));
        upc.ctx().mutex_unlock(self.mutex);
        #[cfg(feature = "trace")]
        upc.ctx()
            .trace_emit(hupc_trace::EventKind::LockRelease, self.home as u64, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{UpcConfig, UpcJob};
    use std::sync::Arc;

    #[test]
    fn mutual_exclusion_across_threads() {
        let job = UpcJob::new(UpcConfig::test_default(4, 2));
        let lock = job.alloc_lock();
        let rt = Arc::clone(job.runtime());
        let off = rt.alloc_words(1);
        job.run(move |upc| {
            let me = upc.mythread();
            for _ in 0..8 {
                lock.lock(&upc);
                // critical section: read-modify-write a shared counter
                let mut v = [0u64];
                upc.gasnet().segment(0).read(off, &mut v);
                upc.compute(time::ns(50));
                upc.gasnet().segment(0).write(off, &[v[0] + 1]);
                lock.unlock(&upc);
            }
            upc.barrier();
            if me == 0 {
                assert_eq!(upc.gasnet().segment(0).read_word(off), 32);
            }
        });
    }

    #[test]
    fn remote_lock_costs_more_than_local() {
        let job = UpcJob::new(UpcConfig::test_default(2, 2)); // 1 thread/node
        let lock = job.alloc_lock_at(0);
        job.run(move |upc| {
            let t0 = upc.now();
            lock.lock(&upc);
            lock.unlock(&upc);
            let dt = upc.now() - t0;
            if upc.mythread() == 0 {
                assert!(dt < time::us(2), "local lock {dt}");
            } else {
                assert!(dt > time::us(4), "remote lock {dt}");
            }
            upc.barrier();
        });
    }

    #[test]
    fn try_lock_fails_when_held() {
        let job = UpcJob::new(UpcConfig::test_default(2, 1));
        let lock = job.alloc_lock();
        job.run(move |upc| {
            if upc.mythread() == 0 {
                lock.lock(&upc);
                upc.barrier(); // let thread 1 try while held
                upc.barrier();
                lock.unlock(&upc);
            } else {
                upc.barrier();
                assert!(!lock.try_lock(&upc));
                upc.barrier();
            }
        });
    }
}
