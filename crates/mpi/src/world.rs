//! Ranks, mailboxes, point-to-point matching, and collectives.

use std::collections::VecDeque;
use std::sync::Arc;

use hupc_gasnet::{Gasnet, GasnetConfig};
use hupc_sim::{time, CompletionId, CondId, Ctx, SimCell, Simulation, SimulationStats, Time};

/// Receiver-side software cost per matched message (tag matching, unpacking
/// — the two-sided overhead one-sided puts avoid).
const RECV_MATCH_COST: Time = time::ns(600);

struct Envelope {
    src: usize,
    tag: u64,
    data: Vec<u64>,
    /// Fires when the payload has physically arrived.
    arrival: CompletionId,
}

struct Mailbox {
    q: SimCell<VecDeque<Envelope>>,
    cond: CondId,
}

/// A communicator over all ranks (MPI_COMM_WORLD).
pub struct MpiWorld {
    gasnet: Arc<Gasnet>,
    boxes: Vec<Mailbox>,
}

impl MpiWorld {
    /// Build a world with one rank per configured thread (MPI runs one
    /// process per core, i.e. the plain process backend).
    pub fn new(sim: &mut Simulation, cfg: GasnetConfig) -> Arc<MpiWorld> {
        let gasnet = Gasnet::new(sim, cfg);
        let mut k = sim.kernel();
        let boxes = (0..gasnet.n_threads())
            .map(|_| Mailbox {
                q: SimCell::new(VecDeque::new()),
                cond: k.new_cond(),
            })
            .collect();
        drop(k);
        Arc::new(MpiWorld { gasnet, boxes })
    }

    pub fn size(&self) -> usize {
        self.gasnet.n_threads()
    }

    pub fn gasnet(&self) -> &Arc<Gasnet> {
        &self.gasnet
    }
}

/// A job being configured (mirror of `hupc_upc::UpcJob`).
pub struct MpiJob {
    sim: Simulation,
    world: Arc<MpiWorld>,
}

impl MpiJob {
    pub fn new(cfg: GasnetConfig) -> Self {
        let mut sim = Simulation::new();
        let world = MpiWorld::new(&mut sim, cfg);
        MpiJob { sim, world }
    }

    pub fn world(&self) -> &Arc<MpiWorld> {
        &self.world
    }

    /// Run the SPMD body on every rank.
    pub fn run<F>(mut self, body: F) -> SimulationStats
    where
        F: for<'a> Fn(Mpi<'a>) + Send + Sync + 'static,
    {
        let body = Arc::new(body);
        for r in 0..self.world.size() {
            let world = Arc::clone(&self.world);
            let body = Arc::clone(&body);
            self.sim.spawn(format!("rank{r}"), move |ctx| {
                body(Mpi {
                    ctx,
                    world,
                    rank: r,
                });
            });
        }
        self.sim.run()
    }
}

/// Per-rank view (what `MPI_Comm_rank` etc. expose).
pub struct Mpi<'a> {
    ctx: &'a Ctx,
    world: Arc<MpiWorld>,
    rank: usize,
}

impl<'a> Mpi<'a> {
    pub fn rank(&self) -> usize {
        self.rank
    }

    pub fn size(&self) -> usize {
        self.world.size()
    }

    pub fn ctx(&self) -> &'a Ctx {
        self.ctx
    }

    pub fn now(&self) -> Time {
        self.ctx.now()
    }

    /// The platform underneath (compute charging, topology queries).
    pub fn gasnet(&self) -> &Arc<hupc_gasnet::Gasnet> {
        &self.world.gasnet
    }

    /// Blocking eager send (returns when the local buffer is reusable).
    pub fn send(&self, dst: usize, tag: u64, data: &[u64]) {
        let bytes = data.len() * hupc_gasnet::WORD_BYTES + 64; // header
        self.send_inner(dst, tag, data.to_vec(), bytes);
    }

    /// Charge-only send: a message of `payload_bytes` with empty contents
    /// (cost-model runs of large workloads).
    pub fn send_sized(&self, dst: usize, tag: u64, payload_bytes: usize) {
        self.send_inner(dst, tag, Vec::new(), payload_bytes + 64);
    }

    fn send_inner(&self, dst: usize, tag: u64, data: Vec<u64>, bytes: usize) {
        assert_ne!(dst, self.rank, "self-sends not supported");
        let h = self
            .world
            .gasnet
            .transfer_nb(self.ctx, self.rank, dst, bytes);
        self.world.boxes[dst].q.with_mut(|q| {
            q.push_back(Envelope {
                src: self.rank,
                tag,
                data,
                arrival: h.remote,
            })
        });
        self.ctx.cond_notify_all(self.world.boxes[dst].cond);
        // Eager protocol: sender resumes once the data left its buffer.
        self.ctx.wait(h.local);
    }

    /// Blocking receive matching `(src, tag)`.
    pub fn recv(&self, src: usize, tag: u64) -> Vec<u64> {
        let mbox = &self.world.boxes[self.rank];
        loop {
            let hit = mbox.q.with_mut(|q| {
                q.iter()
                    .position(|e| e.src == src && e.tag == tag)
                    .map(|i| q.remove(i).expect("position just found"))
            });
            if let Some(env) = hit {
                self.ctx.wait(env.arrival);
                self.ctx.advance(RECV_MATCH_COST);
                return env.data;
            }
            self.ctx.cond_wait(mbox.cond);
        }
    }

    /// Simultaneous exchange with `partner` (MPI_Sendrecv).
    pub fn sendrecv(&self, partner: usize, tag: u64, data: &[u64]) -> Vec<u64> {
        if partner == self.rank {
            return data.to_vec();
        }
        self.send(partner, tag, data);
        self.recv(partner, tag)
    }

    /// Barrier over all ranks.
    pub fn barrier(&self) {
        self.world.gasnet.barrier(self.ctx, self.rank);
    }

    /// Optimized all-to-all (pairwise-exchange schedule, posted
    /// non-blocking): step `s` targets rank `r ^ s` (power-of-two sizes) or
    /// the ring partner; all sends are posted eagerly before draining the
    /// receives, as tuned MPI libraries do for mid-size payloads.
    /// `blocks[j]` is the payload for rank `j`; returns the received blocks
    /// indexed by source rank.
    pub fn alltoall(&self, blocks: &[Vec<u64>]) -> Vec<Vec<u64>> {
        let p = self.size();
        assert_eq!(blocks.len(), p, "need one block per rank");
        let me = self.rank;
        let mut out: Vec<Vec<u64>> = vec![Vec::new(); p];
        out[me] = blocks[me].clone();
        let pow2 = p.is_power_of_two();
        let partner = |s: usize| if pow2 { me ^ s } else { (me + s) % p };
        let source = |s: usize| if pow2 { me ^ s } else { (me + p - s) % p };
        for s in 1..p {
            self.send(partner(s), s as u64, &blocks[partner(s)]);
        }
        for s in 1..p {
            out[source(s)] = self.recv(source(s), s as u64);
        }
        self.barrier();
        out
    }

    /// Charge-only all-to-all with `bytes_per_block` payloads (same schedule
    /// as [`Mpi::alltoall`], no data).
    pub fn alltoall_sized(&self, bytes_per_block: usize) {
        let p = self.size();
        let me = self.rank;
        let pow2 = p.is_power_of_two();
        let partner = |s: usize| if pow2 { me ^ s } else { (me + s) % p };
        let source = |s: usize| if pow2 { me ^ s } else { (me + p - s) % p };
        for s in 1..p {
            self.send_sized(partner(s), s as u64, bytes_per_block);
        }
        for s in 1..p {
            let _ = self.recv(source(s), s as u64);
        }
        self.barrier();
    }

    /// Sum-allreduce of one f64 (gather to rank 0, broadcast back).
    pub fn allreduce_sum_f64(&self, v: f64) -> f64 {
        let p = self.size();
        if p == 1 {
            return v;
        }
        if self.rank == 0 {
            let mut acc = v;
            for src in 1..p {
                let d = self.recv(src, u64::MAX);
                acc += f64::from_bits(d[0]);
            }
            for dst in 1..p {
                self.send(dst, u64::MAX - 1, &[acc.to_bits()]);
            }
            acc
        } else {
            self.send(0, u64::MAX, &[v.to_bits()]);
            f64::from_bits(self.recv(0, u64::MAX - 1)[0])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(ranks: usize, nodes: usize) -> MpiJob {
        MpiJob::new(GasnetConfig::test_default(ranks, nodes))
    }

    #[test]
    fn ping_pong_moves_data_and_time() {
        job(2, 2).run(|mpi| {
            if mpi.rank() == 0 {
                mpi.send(1, 7, &[10, 20, 30]);
                let back = mpi.recv(1, 8);
                assert_eq!(back, vec![60]);
                assert!(mpi.now() > time::us(4), "round trip {}", mpi.now());
            } else {
                let d = mpi.recv(0, 7);
                mpi.send(0, 8, &[d.iter().sum::<u64>()]);
            }
        });
    }

    #[test]
    fn tag_matching_is_selective() {
        job(2, 1).run(|mpi| {
            if mpi.rank() == 0 {
                mpi.send(1, 1, &[111]);
                mpi.send(1, 2, &[222]);
            } else {
                // receive out of order: tag 2 first
                assert_eq!(mpi.recv(0, 2), vec![222]);
                assert_eq!(mpi.recv(0, 1), vec![111]);
            }
        });
    }

    #[test]
    fn alltoall_power_of_two() {
        job(4, 2).run(|mpi| {
            let me = mpi.rank() as u64;
            let blocks: Vec<Vec<u64>> = (0..4).map(|j| vec![me * 10 + j as u64]).collect();
            let got = mpi.alltoall(&blocks);
            for (src, blk) in got.iter().enumerate() {
                assert_eq!(blk, &vec![src as u64 * 10 + me]);
            }
        });
    }

    #[test]
    fn alltoall_non_power_of_two() {
        job(3, 1).run(|mpi| {
            let me = mpi.rank() as u64;
            let blocks: Vec<Vec<u64>> = (0..3).map(|j| vec![me * 100 + j as u64, me]).collect();
            let got = mpi.alltoall(&blocks);
            for (src, blk) in got.iter().enumerate() {
                assert_eq!(blk, &vec![src as u64 * 100 + me, src as u64]);
            }
        });
    }

    #[test]
    fn allreduce_sums() {
        job(4, 2).run(|mpi| {
            let s = mpi.allreduce_sum_f64((mpi.rank() + 1) as f64);
            assert!((s - 10.0).abs() < 1e-12);
        });
    }

    #[test]
    fn recv_blocks_until_sender_arrives() {
        job(2, 2).run(|mpi| {
            if mpi.rank() == 0 {
                mpi.ctx().advance(time::ms(5));
                mpi.send(1, 0, &[1]);
            } else {
                let _ = mpi.recv(0, 0);
                assert!(mpi.now() >= time::ms(5));
            }
        });
    }
}
