//! `hupc-mpi` — a minimal two-sided message-passing substrate on the same
//! simulated platform, standing in for the OpenMPI baseline of the thesis'
//! NAS FT comparison (Figs 4.5/4.6).
//!
//! It is deliberately small: ranks, eager `send`/`recv` with (source, tag)
//! matching, `barrier`, an f64 sum `allreduce`, and — the part the
//! comparison actually exercises — an **optimized `alltoall`** using the
//! pairwise-exchange schedule real MPI libraries select for large messages.
//! Two-sided messaging pays a receiver-side matching overhead a one-sided
//! put does not, but the collective's schedule avoids incast; both effects
//! are visible in the figures exactly as in the thesis.

mod world;

pub use world::{Mpi, MpiJob, MpiWorld};
